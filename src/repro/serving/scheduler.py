"""Micro-batching scheduler: N concurrent callers, one batched forward pass.

PR 1's ``estimate_batch`` made *one caller with many queries* fast; this
module makes *many callers with one query each* fast. Concurrent
``submit(query)`` calls land in a queue; a background flusher coalesces
them — up to ``max_batch`` requests, waiting at most ``max_wait_us``
microseconds from the oldest pending request — into single
``estimate_batch`` invocations, and each caller gets a
:class:`concurrent.futures.Future` resolving to its own estimate.

Determinism: a request may pin a ``seed``; its per-query generator is then
``np.random.default_rng(seed)``, which makes the result bitwise-equal to a
sequential ``estimate(query, rng=np.random.default_rng(seed))`` call no
matter which requests it happened to share a batch with (the batched
engine keeps one uniform-variate stream per query).

Results are cached in an LRU keyed on the *canonicalized plan* —
``(model version, table set + predicate regions, seed, n_samples,
max_rel_var)`` — so textually different but semantically identical
predicates coalesce, and a registry hot-swap (version bump) invalidates
every stale entry at once.

Failure semantics mirror :class:`~repro.errors.SamplerError`'s fail-fast
contract: if a batched inference call raises, every future in that batch
receives the error immediately (no caller blocks forever), and the
scheduler keeps serving subsequent batches.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DeadlineError, ServingError
from repro.relational.query import Query
from repro.serving import faults

#: ``source`` contract: returns the current (model, version) pair.
ModelSource = Callable[[], Tuple[object, int]]


@dataclass
class _Request:
    query: Query
    seed: Optional[int]
    n_samples: Optional[int]
    max_rel_var: Optional[float]
    future: Future
    cache_key: Optional[tuple]
    enqueued_at: float
    #: Absolute ``time.monotonic()`` deadline (None = no deadline). Expired
    #: requests are failed with :class:`DeadlineError` at flush time,
    #: *before* dispatch, so dead work never burns batch slots.
    deadline: Optional[float] = None


class MicroBatchScheduler:
    """Thread-safe front door turning concurrent submits into batched inference.

    ``source`` is any zero-arg callable returning ``(model, version)`` —
    typically ``lambda: registry.get_with_version(name)`` — where ``model``
    exposes ``estimate_batch(queries, n_samples=..., rngs=...)``. Reading
    the source *per flush* is what makes registry hot-swaps take effect
    mid-stream without a restart.

    ``executor`` (optional) offloads flushed micro-batches instead of
    executing them inline on the flusher thread: anything with
    ``submit_batch(model, version, queries, rngs=..., n_samples=...,
    max_rel_var=...) -> Future`` works, in practice a
    :class:`~repro.serving.workers.WorkerPool` that shards the batch
    across processes. Request coalescing, per-request seeds, the
    version-keyed result cache, and fail-fast error chaining behave
    identically on both paths; the inline path remains the bitwise
    reference.
    """

    def __init__(
        self,
        source: ModelSource,
        *,
        max_batch: int = 64,
        max_wait_us: int = 2000,
        cache_size: int = 1024,
        n_samples: Optional[int] = None,
        max_rel_var: Optional[float] = None,
        name: str = "model",
        executor=None,
    ):
        if max_batch < 1:
            raise ServingError("max_batch must be >= 1")
        if max_wait_us < 0:
            raise ServingError("max_wait_us must be >= 0")
        if cache_size < 0:
            raise ServingError("cache_size must be >= 0 (0 disables caching)")
        if max_rel_var is not None and max_rel_var < 0:
            raise ServingError("max_rel_var must be >= 0 (or None to disable)")
        self._source = source
        self._executor = executor
        self.max_batch = max_batch
        self.max_wait_s = max_wait_us / 1e6
        self.cache_size = cache_size
        self.n_samples = n_samples
        self.max_rel_var = max_rel_var
        self.name = name
        self._queue: List[_Request] = []
        self._cache: "OrderedDict[tuple, float]" = OrderedDict()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._closed = False
        self._flusher_failure: Optional[BaseException] = None
        self._rng = np.random.default_rng(0)
        # Telemetry (reads are approximate; guarded writes only).
        self.n_requests = 0
        self.n_batches = 0
        self.n_cache_hits = 0
        self.n_flushed_requests = 0
        self.n_deadline_expired = 0
        # Exponentially weighted submit->resolve latency (ms); the cascade
        # reads this as the neural tier's predicted latency when deciding
        # whether the scheduler path fits a caller's budget_ms.
        self._ewma_latency_ms: Optional[float] = None
        self._flusher = threading.Thread(
            target=self._run, name=f"microbatch-{name}", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Query,
        *,
        seed: Optional[int] = None,
        n_samples: Optional[int] = None,
        max_rel_var: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Future:
        """Enqueue one query; returns a Future resolving to its COUNT(*) estimate.

        Invalid queries (unknown tables/columns, disconnected join graphs)
        fail *here*, synchronously, so one bad request never poisons the
        batch it would have joined.

        ``max_rel_var`` opts the request into variance-adaptive sampling
        (probe walk first, escalate to the full ``n_samples`` only when the
        relative standard error exceeds the bound); it is part of the result
        cache key, so adaptive and fixed-samples results never alias.

        ``deadline`` is an absolute ``time.monotonic()`` instant: a request
        still queued when it passes is failed with
        :class:`~repro.errors.DeadlineError` before dispatch instead of
        occupying a slot in a batch whose answer nobody is waiting for.
        """
        model, version = self._source()
        n_samples = n_samples if n_samples is not None else self.n_samples
        max_rel_var = max_rel_var if max_rel_var is not None else self.max_rel_var
        if max_rel_var is not None and max_rel_var < 0:
            raise ServingError("max_rel_var must be >= 0 (or None to disable)")
        key = self._cache_key(model, version, query, seed, n_samples, max_rel_var)
        future: Future = Future()
        with self._work:
            if self._closed:
                raise ServingError(f"scheduler {self.name!r} is closed")
            if self._flusher_failure is not None:
                raise self._flusher_death_error()
            self.n_requests += 1
            if key is not None and key in self._cache:
                self._cache.move_to_end(key)
                self.n_cache_hits += 1
                future.set_result(self._cache[key])
                return future
            self._queue.append(
                _Request(
                    query, seed, n_samples, max_rel_var, future, key,
                    time.perf_counter(), deadline,
                )
            )
            self._work.notify()
        return future

    def estimate(self, query: Query, *, seed: Optional[int] = None) -> float:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(query, seed=seed).result()

    def estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """Submit many queries and gather their results (harness adapter)."""
        futures = [self.submit(q) for q in queries]
        return np.array([f.result() for f in futures], dtype=np.float64)

    def predicted_latency_ms(self) -> Optional[float]:
        """EWMA of observed submit->resolve latency, or None before any batch."""
        with self._lock:
            return self._ewma_latency_ms

    def invalidate(self) -> None:
        """Drop every cached result (hot-swaps do this implicitly via versions)."""
        with self._lock:
            self._cache.clear()

    def stats(self) -> Dict[str, float]:
        with self._lock:
            out = {
                "requests": self.n_requests,
                "batches": self.n_batches,
                "cache_hits": self.n_cache_hits,
                "cache_size": len(self._cache),
                "mean_batch_size": (
                    self.n_flushed_requests / self.n_batches if self.n_batches else 0.0
                ),
                "deadline_expired": self.n_deadline_expired,
                "ewma_latency_ms": (
                    self._ewma_latency_ms
                    if self._ewma_latency_ms is not None
                    else 0.0
                ),
            }
        out.update(self._engine_stats())
        return out

    def _engine_stats(self) -> Dict[str, float]:
        """Inference-engine telemetry riding the scheduler's stats.

        Surfaces the engine's variance-adaptive counters (``adaptive_*``)
        and, for quantized compiled kernels, the recorded drift-vs-oracle
        summary (``quantization_*``) — from here they reach ``/healthz``
        and the ``repro_scheduler_stat`` gauges on ``/metrics``. Duck-typed
        models without these surfaces contribute nothing.
        """
        try:
            model, _version = self._source()
        except BaseException:
            return {}  # registry failure: submit() reports it, stats stay up
        inference = getattr(model, "inference", None)
        if inference is None and hasattr(model, "plan"):
            inference = model
        if inference is None:
            return {}
        out: Dict[str, float] = {}
        adaptive = getattr(inference, "adaptive_stats", None)
        if callable(adaptive):
            out.update({k: float(v) for k, v in adaptive().items()})
        compiled = getattr(inference, "model", None)
        if hasattr(compiled, "quantization") and callable(
            getattr(compiled, "stats", None)
        ):
            out.update(
                {
                    key: float(value)
                    for key, value in compiled.stats().items()
                    if key.startswith("quantization")
                }
            )
        return out

    def close(self) -> None:
        """Drain pending requests, stop the flusher. Idempotent."""
        with self._work:
            if self._closed:
                return
            self._closed = True
            self._work.notify_all()
        self._flusher.join()

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Flusher
    # ------------------------------------------------------------------
    def _run(self) -> None:
        # Per-batch failures are contained inside _flush (the futures of
        # that batch get the underlying exception); this guard catches the
        # flusher thread itself dying, which would otherwise strand every
        # queued future in a silent forever-pending state. Mirrors
        # ThreadedSampler's SamplerError chaining: callers see a
        # ServingError whose __cause__ is the first underlying exception.
        batch: List[_Request] = []
        try:
            while True:
                batch = self._next_batch()
                if batch is None:
                    return
                self._flush(batch)
                batch = []
        except BaseException as exc:
            with self._work:
                self._flusher_failure = exc
                stranded = batch + self._queue
                self._queue = []
            for request in stranded:
                if not request.future.done():
                    request.future.set_exception(self._flusher_death_error())

    def _flusher_death_error(self) -> ServingError:
        failure = self._flusher_failure
        error = ServingError(
            f"scheduler {self.name!r} flusher died: "
            f"{type(failure).__name__}: {failure}"
        )
        error.__cause__ = failure
        return error

    def _next_batch(self) -> Optional[List[_Request]]:
        """Block until a batch is due; None means closed-and-drained."""
        with self._work:
            while not self._queue:
                if self._closed:
                    return None
                self._work.wait()
            deadline = self._queue[0].enqueued_at + self.max_wait_s
            while len(self._queue) < self.max_batch and not self._closed:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._work.wait(timeout=remaining)
            batch = self._queue[: self.max_batch]
            del self._queue[: self.max_batch]
            return batch

    def _flush(self, batch: List[_Request]) -> None:
        batch = [r for r in batch if r.future.set_running_or_notify_cancel()]
        if not batch:
            return
        # Cancel expired work before dispatch: a request whose deadline has
        # already passed gets a typed DeadlineError now instead of burning a
        # batch slot computing an answer its caller stopped waiting for.
        now = time.monotonic()
        expired = [
            r for r in batch if r.deadline is not None and now >= r.deadline
        ]
        if expired:
            batch = [
                r for r in batch if r.deadline is None or now < r.deadline
            ]
            with self._lock:
                self.n_deadline_expired += len(expired)
            self._fail(
                expired,
                DeadlineError(
                    f"deadline expired before dispatch on scheduler {self.name!r}"
                ),
            )
            if not batch:
                return
        try:
            model, version = self._source()
        except BaseException as exc:  # registry failure: fail the whole batch
            self._fail(batch, exc)
            return
        # One estimate_batch per distinct (n_samples, max_rel_var) pair (the
        # packed token matrix is rectangular, and the adaptive probe/escalate
        # split applies per call); in steady state every request uses the
        # defaults and the whole batch is one group.
        groups: Dict[Tuple[Optional[int], Optional[float]], List[_Request]] = {}
        for request in batch:
            groups.setdefault((request.n_samples, request.max_rel_var), []).append(
                request
            )
        for (n_samples, max_rel_var), requests in groups.items():
            self._flush_group(model, version, n_samples, max_rel_var, requests)

    def _flush_group(
        self,
        model,
        version: int,
        n_samples: Optional[int],
        max_rel_var: Optional[float],
        requests: List[_Request],
    ) -> None:
        rngs = [
            np.random.default_rng(r.seed) if r.seed is not None
            else self._rng.spawn(1)[0]
            for r in requests
        ]
        if self._executor is not None:
            # Sharded path: hand the whole micro-batch to the worker pool.
            # submit_batch applies backpressure by blocking this flusher
            # when every worker is saturated — new submits keep coalescing
            # behind it, exactly like inline execution time used to buy.
            try:
                injector = faults.get_active()
                if injector is not None:
                    injector.check("scheduler.flush")
                pooled = self._executor.submit_batch(
                    model,
                    version,
                    [r.query for r in requests],
                    rngs=rngs,
                    n_samples=n_samples,
                    max_rel_var=max_rel_var,
                )
            except BaseException as exc:
                self._fail(requests, exc)
                return
            pooled.add_done_callback(
                lambda f, requests=requests, version=version: (
                    self._complete_pooled(requests, version, f)
                )
            )
            return
        kwargs = {"rngs": rngs}
        if n_samples is not None:
            kwargs["n_samples"] = n_samples
        if max_rel_var is not None:
            kwargs["max_rel_var"] = max_rel_var
        try:
            # Chaos seam: fires inside the try so an injected fault fails
            # this batch's futures (the contract under test), never the
            # flusher thread itself.
            injector = faults.get_active()
            if injector is not None:
                injector.check("scheduler.flush")
            estimates = model.estimate_batch([r.query for r in requests], **kwargs)
        except BaseException as exc:
            self._fail(requests, exc)
            return
        self._resolve_batch(requests, version, estimates)

    def _complete_pooled(
        self, requests: List[_Request], version: int, pooled: Future
    ) -> None:
        """Resolve a pool-executed batch (runs on the pool's collector)."""
        exc = pooled.exception()
        if exc is not None:
            self._fail(requests, exc)
            return
        self._resolve_batch(requests, version, pooled.result())

    def _resolve_batch(
        self, requests: List[_Request], version: int, estimates
    ) -> None:
        if len(estimates) != len(requests):
            self._fail(
                requests,
                ServingError(
                    f"model returned {len(estimates)} estimates for "
                    f"{len(requests)} queries"
                ),
            )
            return
        now = time.perf_counter()
        with self._lock:
            self.n_batches += 1
            self.n_flushed_requests += len(requests)
            for request in requests:
                lat_ms = (now - request.enqueued_at) * 1e3
                self._ewma_latency_ms = (
                    lat_ms
                    if self._ewma_latency_ms is None
                    else 0.2 * lat_ms + 0.8 * self._ewma_latency_ms
                )
            for request, estimate in zip(requests, estimates):
                value = float(estimate)
                # Re-key under the version actually served: a swap between
                # submit and flush must not poison the new model's cache.
                key = request.cache_key
                if key is not None and self.cache_size > 0:
                    key = (version,) + key[1:]
                    self._cache[key] = value
                    self._cache.move_to_end(key)
                    while len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
        # Resolve futures outside the lock: done-callbacks run synchronously
        # in this thread and may legally re-enter submit().
        for request, estimate in zip(requests, estimates):
            request.future.set_result(float(estimate))

    @staticmethod
    def _fail(requests: List[_Request], exc: BaseException) -> None:
        for request in requests:
            request.future.set_exception(exc)

    # ------------------------------------------------------------------
    def _cache_key(
        self,
        model,
        version: int,
        query: Query,
        seed: Optional[int],
        n_samples: Optional[int],
        max_rel_var: Optional[float],
    ) -> Optional[tuple]:
        """Canonical result-cache key, or None when the query can't be keyed.

        Prefers the inference engine's plan canonicalization (semantically
        equal predicates share an entry); duck-typed models without a
        ``ProgressiveSampler`` fall back to the literal query if hashable.
        """
        inference = getattr(model, "inference", None)
        if inference is None and hasattr(model, "plan"):
            inference = model  # a bare ProgressiveSampler-like engine
        if inference is not None and hasattr(inference, "plan"):
            # Validate even with caching disabled: an invalid query must
            # fail its own submit, never the batch it would have joined.
            query.validate(inference.layout.schema)
            if self.cache_size == 0:
                return None
            plan_key = inference.plan(query).cache_key()
        else:
            if self.cache_size == 0:
                return None
            plan_key = (query.tables, query.predicates)
            try:
                hash(plan_key)
            except TypeError:
                return None
        return (version, plan_key, seed, n_samples, max_rel_var)
