"""Latency-budgeted estimator cascade: cheap tiers first, the model last.

ROADMAP item 4. A served NeuroCard answers every query equally well — and
equally slowly. Most production workloads are *easy-heavy*: single-table
point lookups and short conjunctions that training-free per-table
statistics answer exactly in microseconds, while only the hard multi-join
tail needs learned cross-table correlations. :class:`EstimatorCascade`
routes each query to the cheapest registered tier whose *calibrated*
accuracy bound for that query's class fits the caller's contract
(``max_q_error``), within the caller's latency budget (``budget_ms``);
everything else escalates to the final (neural) tier.

The three pieces:

* :class:`QueryFeatures` — the per-query feature vector (table count,
  predicate counts by operator class, wildcard fraction, narrowest
  predicate-region fraction) and its coarse ``class_key`` bucketing.
* :class:`CascadeCalibration` — per-(tier, class) p95 q-error and median
  latency measured offline on a held-out workload
  (:meth:`EstimatorCascade.calibrate`), persisted alongside the model as
  JSON (:meth:`~CascadeCalibration.save` / :meth:`~CascadeCalibration.load`)
  so a serving process can route from the first request.
* :class:`EstimatorCascade` — ordered tier registration, the routing rule,
  staleness demotion (a :class:`~repro.serving.updates.DriftMonitor`
  staleness q-error inflates the neural tier's calibrated bound, leaning
  the cascade on the SPN/stats tiers while the model is stale), and
  per-tier telemetry.

Routing is the *accuracy* path and is distinct from the circuit breaker's
*failure* path (:mod:`repro.serving.resilience`): the breaker reroutes
when the primary cannot answer at all; the cascade decides who should
answer in the first place. ``docs/estimators.md`` is the authoritative
contract for every tier and documents the decision procedure verbatim.

The cascade itself satisfies the :class:`~repro.serving.EstimationClient`
protocol (``estimate`` / ``estimate_batch``), so it can stand alone in
front of bare estimators (see ``examples/cascade_routing.py``) or be
attached to an :class:`~repro.serving.service.EstimationService` via
:meth:`~repro.serving.service.EstimationService.attach_cascade`, where
cheap tiers answer inline and skip micro-batching entirely.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.regions import Region
from repro.errors import QueryError, ServingError
from repro.relational.query import Query
from repro.relational.schema import JoinSchema

#: Operators with ordered (range) semantics; ``=``/``IN`` are point classes.
_RANGE_OPS = frozenset({"<", "<=", ">", ">="})

#: JSON stand-in for an unbounded (uncalibratable / failing) q-error.
_UNBOUNDED = 1e18


def _q_error(estimate: float, actual: float) -> float:
    """Multiplicative error factor, both sides clamped to >= 1 (paper §7.1)."""
    est = max(float(estimate), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


# ----------------------------------------------------------------------
# Per-query features and class bucketing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryFeatures:
    """The routing feature vector of one query (all cheap to extract)."""

    #: Tables in the query's join graph.
    n_tables: int
    #: Total predicates, and the split by operator class.
    n_predicates: int
    n_equality: int
    n_range: int
    #: Fraction of the query tables' columns left unfiltered (wildcards).
    wildcard_fraction: float
    #: Narrowest predicate region as a fraction of its column's domain
    #: (1.0 for a predicate-free query; 0.0 when some region is empty).
    min_region_fraction: float

    @staticmethod
    def extract(query: Query, schema: JoinSchema) -> "QueryFeatures":
        """Compute features; raises :class:`QueryError` for invalid queries."""
        query.validate(schema)
        n_equality = n_range = 0
        min_fraction = 1.0
        for pred in query.predicates:
            if pred.op in _RANGE_OPS:
                n_range += 1
            else:
                n_equality += 1
            table = schema.table(pred.table)
            region = Region.from_predicate(pred.code_region(table))
            domain = max(table.column(pred.column).domain_size, 1)
            if region.is_empty:
                width = 0
            elif region.kind == "interval":
                width = min(region.hi, domain - 1) - region.lo + 1
            else:
                width = len(region.codes)
            min_fraction = min(min_fraction, width / domain)
        n_columns = sum(
            len(schema.table(t).column_names) for t in query.tables
        )
        filtered = len({(p.table, p.column) for p in query.predicates})
        return QueryFeatures(
            n_tables=len(query.tables),
            n_predicates=len(query.predicates),
            n_equality=n_equality,
            n_range=n_range,
            wildcard_fraction=1.0 - filtered / max(n_columns, 1),
            min_region_fraction=min_fraction,
        )

    @property
    def class_key(self) -> str:
        """Coarse deterministic bucket the calibration is keyed on.

        Three axes — join shape, operator class, narrowest region — giving
        at most 10 classes, so a few hundred held-out queries calibrate
        every class with enough mass (see ``min_class_queries``).
        """
        tables = "1t" if self.n_tables == 1 else "nt"
        if self.n_predicates == 0:
            ops = "none"
        elif self.n_range:
            ops = "rng"
        else:
            ops = "eq"
        width = "narrow" if self.min_region_fraction <= 0.25 else "wide"
        return f"{tables}|{ops}|{width}"


# ----------------------------------------------------------------------
# Offline calibration, persisted alongside the model
# ----------------------------------------------------------------------
class CascadeCalibration:
    """Per-(tier, query-class) accuracy/latency bounds from a held-out workload.

    ``entries`` maps ``tier -> class_key -> {"p95_qerror",
    "median_latency_ms", "n"}``. A tier that raised on a calibration query
    (e.g. DeepDB on a non-star join) records an unbounded q-error for it,
    so its class bound honestly reflects "cannot answer this shape".
    JSON-persisted (:meth:`save`/:meth:`load`) next to the model artifact.
    """

    def __init__(
        self,
        entries: Dict[str, Dict[str, Dict[str, float]]],
        *,
        n_queries: int = 0,
    ):
        self.entries = entries
        self.n_queries = n_queries

    def lookup(self, tier: str, class_key: str) -> Optional[Dict[str, float]]:
        return self.entries.get(tier, {}).get(class_key)

    def tiers(self) -> List[str]:
        return list(self.entries)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"n_queries": self.n_queries, "tiers": self.entries}

    @classmethod
    def from_dict(cls, doc: dict) -> "CascadeCalibration":
        if not isinstance(doc, dict) or "tiers" not in doc:
            raise ServingError("calibration document must carry a 'tiers' mapping")
        return cls(doc["tiers"], n_queries=int(doc.get("n_queries", 0)))

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "CascadeCalibration":
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServingError(f"cannot load cascade calibration {path}: {exc}") from exc
        return cls.from_dict(doc)


# ----------------------------------------------------------------------
# The cascade
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Tier:
    """One registered cascade tier, in escalation order."""

    name: str
    estimator: object
    #: The tier served by the micro-batching scheduler when the cascade is
    #: attached to a service (always the final tier).
    neural: bool = False


@dataclass(frozen=True)
class TierDecision:
    """The routing outcome for one query."""

    tier: Tier
    reason: str
    features: QueryFeatures


class EstimatorCascade:
    """Ordered estimator tiers behind one confidence-gated router.

    Register tiers cheapest-first; the last registered tier is the
    *final* tier and answers whatever nothing cheaper is calibrated to
    answer. The routing rule (documented in ``docs/estimators.md``):

    1. extract :class:`QueryFeatures`, compute the ``class_key``;
    2. walk tiers in order — a tier answers iff its calibrated class
       entry has at least ``min_class_queries`` samples, its adjusted
       p95 q-error bound (× the staleness demotion factor for the neural
       tier) fits ``max_q_error``, and its predicted latency fits
       ``budget_ms`` (when a budget is given);
    3. if no tier qualifies, the tier with the smallest adjusted bound
       among those within budget answers; with none within budget (or no
       calibration at all), the final tier answers.

    Staleness demotion: ``staleness_provider`` (wired to a
    :class:`~repro.serving.updates.DriftMonitor` by
    ``EstimationService.serve_with_updates``) returns the rolling served
    q-error; once it reaches ``demote_staleness_qerror`` the neural
    tier's calibrated bound is multiplied by it, so a stale model loses
    classes to the SPN/stats tiers *before* it starts failing — the
    routing-path complement of the breaker's failure path.
    """

    def __init__(
        self,
        schema: JoinSchema,
        *,
        calibration: Optional[CascadeCalibration] = None,
        default_max_q_error: float = 4.0,
        default_budget_ms: Optional[float] = None,
        min_class_queries: int = 8,
        demote_staleness_qerror: float = 2.0,
    ):
        if default_max_q_error < 1.0:
            raise ServingError("default_max_q_error must be >= 1")
        if default_budget_ms is not None and default_budget_ms <= 0:
            raise ServingError("default_budget_ms must be positive (or None)")
        if min_class_queries < 1:
            raise ServingError("min_class_queries must be >= 1")
        if demote_staleness_qerror < 1.0:
            raise ServingError("demote_staleness_qerror must be >= 1")
        self.schema = schema
        self.calibration = calibration
        self.default_max_q_error = default_max_q_error
        self.default_budget_ms = default_budget_ms
        self.min_class_queries = min_class_queries
        self.demote_staleness_qerror = demote_staleness_qerror
        #: Zero-arg callable returning the rolling staleness q-error
        #: (>= 1.0); None disables demotion.
        self.staleness_provider: Optional[Callable[[], float]] = None
        self._tiers: List[Tier] = []
        self._lock = threading.Lock()
        self._routed = 0
        self._escalations = 0
        self._answered: Dict[str, int] = {}
        self._tier_errors: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Tier registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, estimator, *, neural: bool = False
    ) -> "EstimatorCascade":
        """Append a tier (escalation order = registration order)."""
        if any(t.name == name for t in self._tiers):
            raise ServingError(f"tier {name!r} already registered")
        if not hasattr(estimator, "estimate"):
            raise ServingError(f"tier {name!r} estimator has no estimate()")
        if neural and any(t.neural for t in self._tiers):
            raise ServingError("only one neural tier may be registered")
        self._tiers.append(Tier(name, estimator, neural))
        return self

    @property
    def tiers(self) -> Tuple[Tier, ...]:
        return tuple(self._tiers)

    @property
    def final_tier(self) -> Tier:
        if not self._tiers:
            raise ServingError("cascade has no registered tiers")
        return self._tiers[-1]

    def tier(self, name: str) -> Tier:
        for t in self._tiers:
            if t.name == name:
                return t
        raise ServingError(f"unknown tier {name!r}")

    # ------------------------------------------------------------------
    # Offline calibration
    # ------------------------------------------------------------------
    def calibrate(
        self, queries: Sequence[Query], truths: Sequence[float]
    ) -> CascadeCalibration:
        """Measure every tier on a held-out workload; installs + returns it.

        Run offline (the held-out workload must be disjoint from the
        serving workload) and persist with
        :meth:`CascadeCalibration.save` alongside the model artifact.
        """
        if len(queries) != len(truths):
            raise ServingError("calibration queries/truths length mismatch")
        if not self._tiers:
            raise ServingError("register tiers before calibrating")
        features = [QueryFeatures.extract(q, self.schema) for q in queries]
        entries: Dict[str, Dict[str, Dict[str, float]]] = {}
        for t in self._tiers:
            per_class: Dict[str, Tuple[List[float], List[float]]] = {}
            for query, truth, feats in zip(queries, truths, features):
                start = time.perf_counter()
                try:
                    estimate = float(t.estimator.estimate(query))
                    qerr = min(_q_error(estimate, truth), _UNBOUNDED)
                except Exception:  # noqa: BLE001 - "cannot answer" is a datum
                    # The finite stand-in, not math.inf: np.percentile over
                    # infinities interpolates inf - inf = nan, which would
                    # poison the class bound instead of marking it unbounded.
                    qerr = _UNBOUNDED
                latency_ms = (time.perf_counter() - start) * 1e3
                qerrs, lats = per_class.setdefault(feats.class_key, ([], []))
                qerrs.append(qerr)
                lats.append(latency_ms)
            entries[t.name] = {
                key: {
                    "p95_qerror": float(
                        min(np.percentile(qerrs, 95.0), _UNBOUNDED)
                    ),
                    "median_latency_ms": float(np.median(lats)),
                    "n": float(len(qerrs)),
                }
                for key, (qerrs, lats) in per_class.items()
            }
        self.calibration = CascadeCalibration(entries, n_queries=len(queries))
        return self.calibration

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def staleness_demotion(self) -> float:
        """Current neural-bound multiplier (1.0 = fresh model)."""
        if self.staleness_provider is None:
            return 1.0
        try:
            staleness = float(self.staleness_provider())
        except Exception:  # noqa: BLE001 - telemetry must not break routing
            return 1.0
        if staleness >= self.demote_staleness_qerror:
            return max(staleness, 1.0)
        return 1.0

    def route(
        self,
        query: Query,
        *,
        max_q_error: Optional[float] = None,
        budget_ms: Optional[float] = None,
        neural_latency_ms: Optional[float] = None,
    ) -> TierDecision:
        """Pick the tier for ``query`` (pure decision; no counters moved).

        ``neural_latency_ms`` overrides the neural tier's calibrated
        latency with a live measurement (the scheduler's EWMA) when the
        cascade fronts a service.
        """
        if not self._tiers:
            raise ServingError("cascade has no registered tiers")
        features = QueryFeatures.extract(query, self.schema)
        max_q = max_q_error if max_q_error is not None else self.default_max_q_error
        if max_q < 1.0:
            raise ServingError("max_q_error must be >= 1")
        budget = budget_ms if budget_ms is not None else self.default_budget_ms
        if budget is not None and budget <= 0:
            raise ServingError("budget_ms must be positive (or None)")
        demotion = self.staleness_demotion()

        scored: List[Tuple[Tier, float, Optional[float]]] = []
        for t in self._tiers:
            entry = (
                self.calibration.lookup(t.name, features.class_key)
                if self.calibration is not None
                else None
            )
            if entry is None or entry.get("n", 0) < self.min_class_queries:
                bound, latency = math.inf, None
            else:
                bound = float(entry["p95_qerror"])
                latency = float(entry["median_latency_ms"])
                if bound >= _UNBOUNDED:
                    bound = math.inf
            if t.neural:
                bound *= demotion
                if neural_latency_ms is not None:
                    latency = neural_latency_ms
            scored.append((t, bound, latency))

        # Rule 2: first tier whose calibrated bound and latency both fit.
        for t, bound, latency in scored:
            if bound > max_q:
                continue
            if budget is not None and latency is not None and latency > budget:
                continue
            return TierDecision(t, "bound", features)

        # Rule 3: nothing meets the contract — best bound within budget,
        # falling back to the final tier when the budget excludes everyone
        # (someone has to answer).
        in_budget = [
            (t, bound) for t, bound, latency in scored
            if budget is None or latency is None or latency <= budget
        ]
        if in_budget and any(math.isfinite(bound) for _, bound in in_budget):
            best = min(in_budget, key=lambda item: item[1])
            return TierDecision(best[0], "best-effort", features)
        return TierDecision(self.final_tier, "last-resort", features)

    # ------------------------------------------------------------------
    # Telemetry (the service moves these; standalone estimate() does too)
    # ------------------------------------------------------------------
    def record_answer(self, tier_name: str) -> None:
        with self._lock:
            self._routed += 1
            self._answered[tier_name] = self._answered.get(tier_name, 0) + 1
            if tier_name == self._tiers[-1].name:
                self._escalations += 1

    def record_tier_error(self, tier_name: str) -> None:
        with self._lock:
            self._tier_errors[tier_name] = self._tier_errors.get(tier_name, 0) + 1

    def stats(self) -> Dict[str, object]:
        with self._lock:
            routed = self._routed
            escalations = self._escalations
            answered = dict(self._answered)
            errors = dict(self._tier_errors)
        return {
            "routed": routed,
            "escalations": escalations,
            "escalation_rate": escalations / routed if routed else 0.0,
            "tiers": {t.name: answered.get(t.name, 0) for t in self._tiers},
            "tier_errors": errors,
            "staleness_demotion": self.staleness_demotion(),
        }

    # ------------------------------------------------------------------
    # Standalone EstimationClient surface
    # ------------------------------------------------------------------
    def estimate(
        self,
        query: Query,
        *,
        max_q_error: Optional[float] = None,
        budget_ms: Optional[float] = None,
        **kwargs,
    ) -> float:
        """Route and answer locally (every tier's estimator runs in-process)."""
        decision = self.route(
            query, max_q_error=max_q_error, budget_ms=budget_ms
        )
        t = decision.tier
        try:
            value = float(t.estimator.estimate(query, **kwargs))
        except QueryError:
            raise
        except Exception:
            self.record_tier_error(t.name)
            if t is self.final_tier:
                raise
            final = self.final_tier
            value = float(final.estimator.estimate(query, **kwargs))
            self.record_answer(final.name)
            return value
        self.record_answer(t.name)
        return value

    def estimate_batch(self, queries: Sequence[Query], **kwargs) -> np.ndarray:
        return np.array(
            [self.estimate(q, **kwargs) for q in queries], dtype=np.float64
        )

    @property
    def size_bytes(self) -> Optional[int]:
        """Total resident bytes across tiers (None when nothing reports)."""
        sizes = [
            getattr(t.estimator, "size_bytes", None) for t in self._tiers
        ]
        known = [s for s in sizes if s is not None]
        return sum(known) if known else None

    @property
    def is_fitted(self) -> bool:
        return bool(self._tiers) and all(
            getattr(t.estimator, "is_fitted", True) for t in self._tiers
        )


__all__ = [
    "CascadeCalibration",
    "EstimatorCascade",
    "QueryFeatures",
    "Tier",
    "TierDecision",
]
