"""EstimationService: the one-object serving front door.

Ties a :class:`~repro.serving.registry.ModelRegistry` (who owns which
model) to per-model :class:`~repro.serving.scheduler.MicroBatchScheduler`
instances (how concurrent requests reach it), so an application does::

    service = EstimationService()
    service.register("imdb", estimator)          # or register_path(...)
    future = service.submit(query, model="imdb")  # from any thread
    count = future.result()
    service.refresh("imdb", new_snapshot, train_tuples=50_000)  # hot-swap

A single-model service also quacks like an estimator (``estimate`` /
``estimate_batch``), so it drops straight into
:func:`repro.eval.harness.evaluate_estimator` and the benchmark suites.
"""

from __future__ import annotations

import dataclasses
import threading
import warnings
from concurrent.futures import Future
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.estimator import NeuroCard
from repro.errors import ServingError
from repro.relational.query import Query
from repro.relational.schema import JoinSchema
from repro.serving.config import ServingConfig
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import MicroBatchScheduler
from repro.serving.updates import (
    BackgroundRefresher,
    DriftMonitor,
    RefreshPolicy,
    StreamingIngestor,
)
from repro.serving.workers import WorkerPool

#: Legacy constructor kwargs and the ServingConfig fields they map to.
_LEGACY_KWARGS = ("max_batch", "max_wait_us", "cache_size", "n_samples")


class EstimationService:
    """Registry + schedulers (+ worker pools) behind one façade.

    All knobs live in one :class:`~repro.serving.config.ServingConfig`;
    with ``config.workers > 0`` each served model gets a
    :class:`~repro.serving.workers.WorkerPool` and its scheduler shards
    micro-batches across processes instead of executing them inline.
    Safe to share across threads.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        config: Optional[ServingConfig] = None,
        max_batch: Optional[int] = None,
        max_wait_us: Optional[int] = None,
        cache_size: Optional[int] = None,
        n_samples: Optional[int] = None,
    ):
        config = config if config is not None else ServingConfig()
        legacy = {
            name: value
            for name, value in (
                ("max_batch", max_batch),
                ("max_wait_us", max_wait_us),
                ("cache_size", cache_size),
                ("n_samples", n_samples),
            )
            if value is not None
        }
        if legacy:
            warnings.warn(
                f"EstimationService({', '.join(sorted(legacy))}=...) keyword "
                "arguments are deprecated; pass "
                f"config=ServingConfig({', '.join(sorted(legacy))}=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = dataclasses.replace(config, **legacy)
        self.config = config
        self.registry = (
            registry
            if registry is not None
            else ModelRegistry(budget_bytes=config.budget_bytes)
        )
        self._schedulers: Dict[str, MicroBatchScheduler] = {}
        self._pools: Dict[str, WorkerPool] = {}
        self._refreshers: list[BackgroundRefresher] = []
        self._lock = threading.Lock()
        self._closed = False
        # Eager publish on hot-swap: the new version reaches every worker
        # pipe (in-band, ahead of any post-swap batch) before swap()
        # returns, so multiprocess serving never answers a post-swap
        # request from a stale worker version.
        self.registry.subscribe(self._on_swap)

    # ------------------------------------------------------------------
    # Model management (delegates to the registry)
    # ------------------------------------------------------------------
    def register(self, name: str, estimator: NeuroCard) -> "EstimationService":
        self.registry.register(name, estimator)
        return self

    def register_path(
        self, name: str, path, schema: JoinSchema
    ) -> "EstimationService":
        self.registry.register_path(name, path, schema)
        return self

    def swap(self, name: str, estimator: NeuroCard) -> int:
        """Hot-swap ``name``; in-flight batches finish on the old model."""
        return self.registry.swap(name, estimator)

    def refresh(
        self, name: str, new_schema: JoinSchema, train_tuples: Optional[int] = None
    ) -> int:
        """Incrementally retrain a *copy* onto a snapshot, then hot-swap it in.

        Readers never block: the version bump invalidates the scheduler's
        result cache so post-refresh submits recompute against the new model.
        """
        return self.registry.refresh(name, new_schema, train_tuples=train_tuples)

    def serve_with_updates(
        self,
        name: str,
        ingestor: StreamingIngestor,
        *,
        policy: Optional[RefreshPolicy] = None,
        monitor: Optional[DriftMonitor] = None,
        poll_interval: Optional[float] = None,
    ) -> BackgroundRefresher:
        """Keep ``name`` fresh against an ingest stream (started refresher).

        Attaches a :class:`~repro.serving.updates.BackgroundRefresher` that
        polls ``ingestor``, consults the drift monitor/policy, and hot-swaps
        refreshed models in behind this service's schedulers — traffic is
        never blocked, and the refresher is closed with the service.
        """
        refresher = BackgroundRefresher(
            self, name, ingestor,
            policy=policy if policy is not None else self.config.refresh_policy(),
            monitor=monitor,
            poll_interval=(
                poll_interval if poll_interval is not None
                else self.config.poll_interval
            ),
        )
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            self._refreshers.append(refresher)
        return refresher.start()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def scheduler(self, model: Optional[str] = None) -> MicroBatchScheduler:
        """The (lazily created) scheduler in front of ``model``."""
        name = self._resolve(model)
        if name not in self.registry:
            raise ServingError(f"unknown model {name!r}")
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            scheduler = self._schedulers.get(name)
            if scheduler is None:
                pool = None
                if self.config.workers > 0:
                    pool = self._pools.get(name)
                    if pool is None:
                        pool = WorkerPool(
                            lambda: self.registry.get_with_version(name),
                            name=name,
                            **self.config.pool_opts(),
                        )
                        self._pools[name] = pool
                scheduler = MicroBatchScheduler(
                    lambda: self.registry.get_with_version(name),
                    name=name,
                    executor=pool,
                    **self.config.scheduler_opts(),
                )
                self._schedulers[name] = scheduler
        return scheduler

    def pool(self, model: Optional[str] = None) -> Optional[WorkerPool]:
        """The worker pool behind ``model`` (None when serving inline)."""
        name = self._resolve(model)
        with self._lock:
            return self._pools.get(name)

    @property
    def refreshers(self) -> tuple:
        """Attached background refreshers (health/metrics introspection)."""
        with self._lock:
            return tuple(self._refreshers)

    def _on_swap(self, name: str, estimator: NeuroCard, version: int) -> None:
        with self._lock:
            pool = self._pools.get(name)
        if pool is not None:
            pool.publish(estimator, version, wait=True)

    def submit(
        self,
        query: Query,
        *,
        model: Optional[str] = None,
        seed: Optional[int] = None,
        n_samples: Optional[int] = None,
        max_rel_var: Optional[float] = None,
    ) -> Future:
        return self.scheduler(model).submit(
            query, seed=seed, n_samples=n_samples, max_rel_var=max_rel_var
        )

    def estimate(
        self, query: Query, *, model: Optional[str] = None, seed: Optional[int] = None
    ) -> float:
        return self.submit(query, model=model, seed=seed).result()

    def estimate_batch(
        self, queries: Sequence[Query], *, model: Optional[str] = None
    ) -> np.ndarray:
        futures = [self.submit(q, model=model) for q in queries]
        return np.array([f.result() for f in futures], dtype=np.float64)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict]:
        """Scheduler telemetry per model (under ``models``) + registry counters."""
        with self._lock:
            schedulers = dict(self._schedulers)
            pools = dict(self._pools)
            refreshers = list(self._refreshers)
        stats = {
            "models": {name: s.stats() for name, s in schedulers.items()},
            "registry": {
                "n_models": len(self.registry.names()),
                "resident_bytes": self.registry.resident_bytes,
                "loads": self.registry.loads,
                "evictions": self.registry.evictions,
            },
        }
        if pools:
            stats["pools"] = {name: p.stats() for name, p in pools.items()}
        if refreshers:
            stats["updates"] = {r.name: r.stats() for r in refreshers}
        return stats

    def close(self) -> None:
        """Stop refreshers, then schedulers, then worker pools. Idempotent."""
        with self._lock:
            self._closed = True
            schedulers = list(self._schedulers.values())
            self._schedulers.clear()
            pools = list(self._pools.values())
            self._pools.clear()
            refreshers = list(self._refreshers)
            self._refreshers.clear()
        # Refreshers first: a refresh completing after its schedulers are
        # gone would be wasted work (though harmless — swaps touch only the
        # registry). Pools last: schedulers drain their queues into the
        # pool, so the pool must outlive every flusher.
        for refresher in refreshers:
            refresher.close()
        for scheduler in schedulers:
            scheduler.close()
        for pool in pools:
            pool.close()

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _resolve(self, model: Optional[str]) -> str:
        if model is not None:
            return model
        names = self.registry.names()
        if len(names) != 1:
            raise ServingError(
                "model name required when the registry holds "
                f"{len(names)} models: {sorted(names)}"
            )
        return names[0]

    @property
    def size_bytes(self) -> Optional[int]:
        """Resident model bytes (harness Size column for single-model services)."""
        return self.registry.resident_bytes or None
