"""EstimationService: the one-object serving front door.

Ties a :class:`~repro.serving.registry.ModelRegistry` (who owns which
model) to per-model :class:`~repro.serving.scheduler.MicroBatchScheduler`
instances (how concurrent requests reach it), so an application does::

    service = EstimationService()
    service.register("imdb", estimator)          # or register_path(...)
    future = service.submit(query, model="imdb")  # from any thread
    count = future.result()
    service.refresh("imdb", new_snapshot, train_tuples=50_000)  # hot-swap

A single-model service also quacks like an estimator (``estimate`` /
``estimate_batch``), so it drops straight into
:func:`repro.eval.harness.evaluate_estimator` and the benchmark suites.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.estimator import NeuroCard
from repro.errors import ServingError
from repro.relational.query import Query
from repro.relational.schema import JoinSchema
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import MicroBatchScheduler
from repro.serving.updates import (
    BackgroundRefresher,
    DriftMonitor,
    RefreshPolicy,
    StreamingIngestor,
)


class EstimationService:
    """Registry + schedulers behind one façade; safe to share across threads."""

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        max_batch: int = 64,
        max_wait_us: int = 2000,
        cache_size: int = 1024,
        n_samples: Optional[int] = None,
    ):
        self.registry = registry if registry is not None else ModelRegistry()
        self._scheduler_opts = dict(
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            cache_size=cache_size,
            n_samples=n_samples,
        )
        self._schedulers: Dict[str, MicroBatchScheduler] = {}
        self._refreshers: list[BackgroundRefresher] = []
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Model management (delegates to the registry)
    # ------------------------------------------------------------------
    def register(self, name: str, estimator: NeuroCard) -> "EstimationService":
        self.registry.register(name, estimator)
        return self

    def register_path(
        self, name: str, path, schema: JoinSchema
    ) -> "EstimationService":
        self.registry.register_path(name, path, schema)
        return self

    def swap(self, name: str, estimator: NeuroCard) -> int:
        """Hot-swap ``name``; in-flight batches finish on the old model."""
        return self.registry.swap(name, estimator)

    def refresh(
        self, name: str, new_schema: JoinSchema, train_tuples: Optional[int] = None
    ) -> int:
        """Incrementally retrain a *copy* onto a snapshot, then hot-swap it in.

        Readers never block: the version bump invalidates the scheduler's
        result cache so post-refresh submits recompute against the new model.
        """
        return self.registry.refresh(name, new_schema, train_tuples=train_tuples)

    def serve_with_updates(
        self,
        name: str,
        ingestor: StreamingIngestor,
        *,
        policy: Optional[RefreshPolicy] = None,
        monitor: Optional[DriftMonitor] = None,
        poll_interval: float = 0.05,
    ) -> BackgroundRefresher:
        """Keep ``name`` fresh against an ingest stream (started refresher).

        Attaches a :class:`~repro.serving.updates.BackgroundRefresher` that
        polls ``ingestor``, consults the drift monitor/policy, and hot-swaps
        refreshed models in behind this service's schedulers — traffic is
        never blocked, and the refresher is closed with the service.
        """
        refresher = BackgroundRefresher(
            self, name, ingestor,
            policy=policy, monitor=monitor, poll_interval=poll_interval,
        )
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            self._refreshers.append(refresher)
        return refresher.start()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def scheduler(self, model: Optional[str] = None) -> MicroBatchScheduler:
        """The (lazily created) scheduler in front of ``model``."""
        name = self._resolve(model)
        if name not in self.registry:
            raise ServingError(f"unknown model {name!r}")
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            scheduler = self._schedulers.get(name)
            if scheduler is None:
                scheduler = MicroBatchScheduler(
                    lambda: self.registry.get_with_version(name),
                    name=name,
                    **self._scheduler_opts,
                )
                self._schedulers[name] = scheduler
        return scheduler

    def submit(
        self,
        query: Query,
        *,
        model: Optional[str] = None,
        seed: Optional[int] = None,
        n_samples: Optional[int] = None,
    ) -> Future:
        return self.scheduler(model).submit(query, seed=seed, n_samples=n_samples)

    def estimate(
        self, query: Query, *, model: Optional[str] = None, seed: Optional[int] = None
    ) -> float:
        return self.submit(query, model=model, seed=seed).result()

    def estimate_batch(
        self, queries: Sequence[Query], *, model: Optional[str] = None
    ) -> np.ndarray:
        futures = [self.submit(q, model=model) for q in queries]
        return np.array([f.result() for f in futures], dtype=np.float64)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict]:
        """Scheduler telemetry per model (under ``models``) + registry counters."""
        with self._lock:
            schedulers = dict(self._schedulers)
            refreshers = list(self._refreshers)
        stats = {
            "models": {name: s.stats() for name, s in schedulers.items()},
            "registry": {
                "n_models": len(self.registry.names()),
                "resident_bytes": self.registry.resident_bytes,
                "loads": self.registry.loads,
                "evictions": self.registry.evictions,
            },
        }
        if refreshers:
            stats["updates"] = {r.name: r.stats() for r in refreshers}
        return stats

    def close(self) -> None:
        """Stop refreshers, then drain and stop every scheduler. Idempotent."""
        with self._lock:
            self._closed = True
            schedulers = list(self._schedulers.values())
            self._schedulers.clear()
            refreshers = list(self._refreshers)
            self._refreshers.clear()
        # Refreshers first: a refresh completing after its schedulers are
        # gone would be wasted work (though harmless — swaps touch only the
        # registry).
        for refresher in refreshers:
            refresher.close()
        for scheduler in schedulers:
            scheduler.close()

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _resolve(self, model: Optional[str]) -> str:
        if model is not None:
            return model
        names = self.registry.names()
        if len(names) != 1:
            raise ServingError(
                "model name required when the registry holds "
                f"{len(names)} models: {sorted(names)}"
            )
        return names[0]

    @property
    def size_bytes(self) -> Optional[int]:
        """Resident model bytes (harness Size column for single-model services)."""
        return self.registry.resident_bytes or None
