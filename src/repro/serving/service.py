"""EstimationService: the one-object serving front door.

Ties a :class:`~repro.serving.registry.ModelRegistry` (who owns which
model) to per-model :class:`~repro.serving.scheduler.MicroBatchScheduler`
instances (how concurrent requests reach it), so an application does::

    service = EstimationService()
    service.register("imdb", estimator)          # or register_path(...)
    future = service.submit(query, model="imdb")  # from any thread
    count = future.result()
    service.refresh("imdb", new_snapshot, train_tuples=50_000)  # hot-swap

A single-model service also quacks like an estimator (``estimate`` /
``estimate_batch``), so it drops straight into
:func:`repro.eval.harness.evaluate_estimator` and the benchmark suites.

Degraded-mode cascade (PR 9): :meth:`register_fallback` attaches a cheap
estimator (default: training-free per-table statistics) behind a model's
per-model :class:`~repro.serving.resilience.CircuitBreaker`. While the
breaker is closed, primary failures are answered by the fallback (and
counted); after ``config.breaker_failures`` consecutive failures the
breaker opens and traffic skips the broken primary entirely until a
half-open probe succeeds. Fallback-served futures carry
``future.degraded == True`` — the HTTP layer surfaces that as
``"degraded": true`` in response bodies and a counter on ``/metrics``.
Deadline expiries and invalid queries are never cascaded: they are the
caller's signal, not a serving failure.
"""

from __future__ import annotations

import dataclasses
import threading
import warnings
from concurrent.futures import Future
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.estimator import NeuroCard
from repro.errors import DeadlineError, QueryError, ServingError
from repro.relational.query import Query
from repro.relational.schema import JoinSchema
from repro.serving.config import ServingConfig
from repro.serving.registry import ModelRegistry
from repro.serving.resilience import FALLBACK, PROBE, CircuitBreaker
from repro.serving.scheduler import MicroBatchScheduler
from repro.serving.updates import (
    BackgroundRefresher,
    DriftMonitor,
    RefreshPolicy,
    StreamingIngestor,
)
from repro.serving.workers import WorkerPool

#: Legacy constructor kwargs and the ServingConfig fields they map to.
_LEGACY_KWARGS = ("max_batch", "max_wait_us", "cache_size", "n_samples")


class EstimationService:
    """Registry + schedulers (+ worker pools) behind one façade.

    All knobs live in one :class:`~repro.serving.config.ServingConfig`;
    with ``config.workers > 0`` each served model gets a
    :class:`~repro.serving.workers.WorkerPool` and its scheduler shards
    micro-batches across processes instead of executing them inline.
    Safe to share across threads.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        config: Optional[ServingConfig] = None,
        max_batch: Optional[int] = None,
        max_wait_us: Optional[int] = None,
        cache_size: Optional[int] = None,
        n_samples: Optional[int] = None,
    ):
        config = config if config is not None else ServingConfig()
        legacy = {
            name: value
            for name, value in (
                ("max_batch", max_batch),
                ("max_wait_us", max_wait_us),
                ("cache_size", cache_size),
                ("n_samples", n_samples),
            )
            if value is not None
        }
        if legacy:
            warnings.warn(
                f"EstimationService({', '.join(sorted(legacy))}=...) keyword "
                "arguments are deprecated; pass "
                f"config=ServingConfig({', '.join(sorted(legacy))}=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = dataclasses.replace(config, **legacy)
        self.config = config
        self.registry = (
            registry
            if registry is not None
            else ModelRegistry(budget_bytes=config.budget_bytes)
        )
        self._schedulers: Dict[str, MicroBatchScheduler] = {}
        self._pools: Dict[str, WorkerPool] = {}
        self._refreshers: list[BackgroundRefresher] = []
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._fallbacks: Dict[str, object] = {}
        self._degraded: Dict[str, int] = {}
        self._fallback_errors: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._closed = False
        # Eager publish on hot-swap: the new version reaches every worker
        # pipe (in-band, ahead of any post-swap batch) before swap()
        # returns, so multiprocess serving never answers a post-swap
        # request from a stale worker version.
        self.registry.subscribe(self._on_swap)

    # ------------------------------------------------------------------
    # Model management (delegates to the registry)
    # ------------------------------------------------------------------
    def register(self, name: str, estimator: NeuroCard) -> "EstimationService":
        self.registry.register(name, estimator)
        return self

    def register_path(
        self, name: str, path, schema: JoinSchema
    ) -> "EstimationService":
        self.registry.register_path(name, path, schema)
        return self

    def swap(self, name: str, estimator: NeuroCard) -> int:
        """Hot-swap ``name``; in-flight batches finish on the old model."""
        return self.registry.swap(name, estimator)

    def refresh(
        self, name: str, new_schema: JoinSchema, train_tuples: Optional[int] = None
    ) -> int:
        """Incrementally retrain a *copy* onto a snapshot, then hot-swap it in.

        Readers never block: the version bump invalidates the scheduler's
        result cache so post-refresh submits recompute against the new model.
        """
        return self.registry.refresh(name, new_schema, train_tuples=train_tuples)

    def serve_with_updates(
        self,
        name: str,
        ingestor: StreamingIngestor,
        *,
        policy: Optional[RefreshPolicy] = None,
        monitor: Optional[DriftMonitor] = None,
        poll_interval: Optional[float] = None,
    ) -> BackgroundRefresher:
        """Keep ``name`` fresh against an ingest stream (started refresher).

        Attaches a :class:`~repro.serving.updates.BackgroundRefresher` that
        polls ``ingestor``, consults the drift monitor/policy, and hot-swaps
        refreshed models in behind this service's schedulers — traffic is
        never blocked, and the refresher is closed with the service.
        """
        refresher = BackgroundRefresher(
            self, name, ingestor,
            policy=policy if policy is not None else self.config.refresh_policy(),
            monitor=monitor,
            poll_interval=(
                poll_interval if poll_interval is not None
                else self.config.poll_interval
            ),
        )
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            self._refreshers.append(refresher)
        return refresher.start()

    def register_fallback(
        self, model: Optional[str] = None, estimator=None
    ) -> "EstimationService":
        """Attach a degraded-mode fallback estimator behind ``model``'s breaker.

        With no ``estimator``, a training-free
        :class:`~repro.baselines.per_table.PerTableStatsEstimator` is built
        from the registered model's schema — exact on single-table
        conjunctions, independence-assumption across joins, and immune to
        whatever broke the primary (no weights, no workers, no artifacts).
        Once registered, primary failures are answered by the fallback and
        the per-model circuit breaker starts routing (see module docstring).
        """
        name = self._resolve(model)
        if name not in self.registry:
            raise ServingError(f"unknown model {name!r}")
        if estimator is None:
            schema = getattr(self.registry.get(name), "schema", None)
            if schema is None:
                raise ServingError(
                    f"model {name!r} exposes no schema; pass an explicit "
                    "fallback estimator"
                )
            from repro.baselines.per_table import PerTableStatsEstimator

            estimator = PerTableStatsEstimator(schema)
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            self._fallbacks[name] = estimator
        return self

    def breaker(self, model: Optional[str] = None) -> CircuitBreaker:
        """The (lazily created) circuit breaker in front of ``model``."""
        name = self._resolve(model)
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    failures=self.config.breaker_failures,
                    cooldown_s=self.config.breaker_cooldown_s,
                )
                self._breakers[name] = breaker
        return breaker

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def scheduler(self, model: Optional[str] = None) -> MicroBatchScheduler:
        """The (lazily created) scheduler in front of ``model``."""
        name = self._resolve(model)
        if name not in self.registry:
            raise ServingError(f"unknown model {name!r}")
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            scheduler = self._schedulers.get(name)
            if scheduler is None:
                pool = None
                if self.config.workers > 0:
                    pool = self._pools.get(name)
                    if pool is None:
                        pool = WorkerPool(
                            lambda: self.registry.get_with_version(name),
                            name=name,
                            **self.config.pool_opts(),
                        )
                        self._pools[name] = pool
                scheduler = MicroBatchScheduler(
                    lambda: self.registry.get_with_version(name),
                    name=name,
                    executor=pool,
                    **self.config.scheduler_opts(),
                )
                self._schedulers[name] = scheduler
        return scheduler

    def pool(self, model: Optional[str] = None) -> Optional[WorkerPool]:
        """The worker pool behind ``model`` (None when serving inline)."""
        name = self._resolve(model)
        with self._lock:
            return self._pools.get(name)

    @property
    def refreshers(self) -> tuple:
        """Attached background refreshers (health/metrics introspection)."""
        with self._lock:
            return tuple(self._refreshers)

    def _on_swap(self, name: str, estimator: NeuroCard, version: int) -> None:
        with self._lock:
            pool = self._pools.get(name)
        if pool is not None:
            pool.publish(estimator, version, wait=True)

    def submit(
        self,
        query: Query,
        *,
        model: Optional[str] = None,
        seed: Optional[int] = None,
        n_samples: Optional[int] = None,
        max_rel_var: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Future:
        """Submit ``query``; resolves through the fallback cascade if attached.

        ``deadline`` is an absolute ``time.monotonic()`` timestamp: requests
        still queued when it passes fail with
        :class:`~repro.errors.DeadlineError` *before* dispatch, so expired
        work never occupies a worker. Returned futures carry a ``degraded``
        attribute (True when the answer came from the fallback estimator).
        """
        name = self._resolve(model)
        fallback = self._fallbacks.get(name)
        if fallback is None:
            # No fallback registered: original semantics, untouched — the
            # breaker isn't even consulted, so errors surface verbatim.
            return self.scheduler(name).submit(
                query,
                seed=seed,
                n_samples=n_samples,
                max_rel_var=max_rel_var,
                deadline=deadline,
            )

        breaker = self.breaker(name)
        route = breaker.allow()
        if route == FALLBACK:
            # Open circuit: skip the broken primary entirely (no scheduler
            # queueing, no worker dispatch) and answer from the fallback.
            outer: Future = Future()
            self._resolve_degraded(outer, name, query, fallback, cause=None)
            return outer

        probe = route == PROBE
        try:
            inner = self.scheduler(name).submit(
                query,
                seed=seed,
                n_samples=n_samples,
                max_rel_var=max_rel_var,
                deadline=deadline,
            )
        except QueryError:
            if probe:
                breaker.record_success(probe=True)  # release the probe slot
            raise
        except Exception as exc:
            # Submit-time serving failure (closed scheduler, dead flusher,
            # artifact load error): counts against the breaker and cascades.
            breaker.record_failure(probe=probe)
            outer = Future()
            self._resolve_degraded(outer, name, query, fallback, cause=exc)
            return outer

        outer = Future()
        outer.degraded = False

        def _settle(done: Future) -> None:
            exc = done.exception()
            if exc is None:
                breaker.record_success(probe=probe)
                outer.set_result(done.result())
            elif isinstance(exc, (DeadlineError, QueryError)):
                # The caller's signal (expired budget / invalid query) —
                # neither a serving failure nor something to answer for.
                if probe:
                    breaker.record_success(probe=True)
                outer.set_exception(exc)
            else:
                breaker.record_failure(probe=probe)
                self._resolve_degraded(outer, name, query, fallback, cause=exc)

        inner.add_done_callback(_settle)
        return outer

    def _resolve_degraded(
        self, outer: Future, name: str, query: Query, fallback, *, cause
    ) -> None:
        """Answer ``outer`` from the fallback estimator (or the original error)."""
        try:
            estimate = float(fallback.estimate(query))
        except Exception as fallback_exc:
            with self._lock:
                self._fallback_errors[name] = self._fallback_errors.get(name, 0) + 1
            outer.set_exception(cause if cause is not None else fallback_exc)
            return
        with self._lock:
            self._degraded[name] = self._degraded.get(name, 0) + 1
        outer.degraded = True
        outer.set_result(estimate)

    def estimate(
        self, query: Query, *, model: Optional[str] = None, seed: Optional[int] = None
    ) -> float:
        return self.submit(query, model=model, seed=seed).result()

    def estimate_batch(
        self, queries: Sequence[Query], *, model: Optional[str] = None
    ) -> np.ndarray:
        futures = [self.submit(q, model=model) for q in queries]
        return np.array([f.result() for f in futures], dtype=np.float64)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict]:
        """Scheduler telemetry per model (under ``models``) + registry counters."""
        with self._lock:
            schedulers = dict(self._schedulers)
            pools = dict(self._pools)
            refreshers = list(self._refreshers)
            breakers = dict(self._breakers)
            fallbacks = set(self._fallbacks)
            degraded = dict(self._degraded)
            fallback_errors = dict(self._fallback_errors)
        stats = {
            "models": {name: s.stats() for name, s in schedulers.items()},
            "registry": {
                "n_models": len(self.registry.names()),
                "resident_bytes": self.registry.resident_bytes,
                "loads": self.registry.loads,
                "evictions": self.registry.evictions,
            },
        }
        if pools:
            stats["pools"] = {name: p.stats() for name, p in pools.items()}
        if refreshers:
            stats["updates"] = {r.name: r.stats() for r in refreshers}
        if breakers or fallbacks:
            resilience: Dict[str, Dict] = {}
            for name in sorted(set(breakers) | fallbacks):
                entry = breakers[name].stats() if name in breakers else {}
                entry["fallback_registered"] = int(name in fallbacks)
                entry["degraded_responses"] = degraded.get(name, 0)
                entry["fallback_errors"] = fallback_errors.get(name, 0)
                resilience[name] = entry
            stats["resilience"] = resilience
        return stats

    def close(self) -> None:
        """Stop refreshers, then schedulers, then worker pools. Idempotent."""
        with self._lock:
            self._closed = True
            schedulers = list(self._schedulers.values())
            self._schedulers.clear()
            pools = list(self._pools.values())
            self._pools.clear()
            refreshers = list(self._refreshers)
            self._refreshers.clear()
        # Refreshers first: a refresh completing after its schedulers are
        # gone would be wasted work (though harmless — swaps touch only the
        # registry). Pools last: schedulers drain their queues into the
        # pool, so the pool must outlive every flusher.
        for refresher in refreshers:
            refresher.close()
        for scheduler in schedulers:
            scheduler.close()
        for pool in pools:
            pool.close()

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _resolve(self, model: Optional[str]) -> str:
        if model is not None:
            return model
        names = self.registry.names()
        if len(names) != 1:
            raise ServingError(
                "model name required when the registry holds "
                f"{len(names)} models: {sorted(names)}"
            )
        return names[0]

    @property
    def size_bytes(self) -> Optional[int]:
        """Resident model bytes (harness Size column for single-model services)."""
        return self.registry.resident_bytes or None
