"""EstimationService: the one-object serving front door.

Ties a :class:`~repro.serving.registry.ModelRegistry` (who owns which
model) to per-model :class:`~repro.serving.scheduler.MicroBatchScheduler`
instances (how concurrent requests reach it), so an application does::

    service = EstimationService()
    service.register("imdb", estimator)          # or register_path(...)
    future = service.submit(query, model="imdb")  # from any thread
    count = future.result()
    service.refresh("imdb", new_snapshot, train_tuples=50_000)  # hot-swap

A single-model service also quacks like an estimator (``estimate`` /
``estimate_batch``), so it drops straight into
:func:`repro.eval.harness.evaluate_estimator` and the benchmark suites.

Degraded-mode cascade (PR 9): :meth:`register_fallback` attaches a cheap
estimator (default: training-free per-table statistics) behind a model's
per-model :class:`~repro.serving.resilience.CircuitBreaker`. While the
breaker is closed, primary failures are answered by the fallback (and
counted); after ``config.breaker_failures`` consecutive failures the
breaker opens and traffic skips the broken primary entirely until a
half-open probe succeeds. Fallback-served futures carry
``future.degraded == True`` — the HTTP layer surfaces that as
``"degraded": true`` in response bodies and a counter on ``/metrics``.
Deadline expiries and invalid queries are never cascaded: they are the
caller's signal, not a serving failure.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from concurrent.futures import Future
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.estimator import NeuroCard
from repro.errors import DeadlineError, QueryError, ServingError
from repro.relational.query import Query
from repro.relational.schema import JoinSchema
from repro.serving.cascade import CascadeCalibration, EstimatorCascade, Tier
from repro.serving.config import ServingConfig
from repro.serving.registry import ModelRegistry
from repro.serving.resilience import FALLBACK, PROBE, CircuitBreaker
from repro.serving.scheduler import MicroBatchScheduler
from repro.serving.updates import (
    BackgroundRefresher,
    DriftMonitor,
    RefreshPolicy,
    StreamingIngestor,
)
from repro.serving.workers import WorkerPool

#: Legacy constructor kwargs and the ServingConfig fields they map to.
_LEGACY_KWARGS = ("max_batch", "max_wait_us", "cache_size", "n_samples")


class EstimationService:
    """Registry + schedulers (+ worker pools) behind one façade.

    All knobs live in one :class:`~repro.serving.config.ServingConfig`;
    with ``config.workers > 0`` each served model gets a
    :class:`~repro.serving.workers.WorkerPool` and its scheduler shards
    micro-batches across processes instead of executing them inline.
    Safe to share across threads.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        config: Optional[ServingConfig] = None,
        max_batch: Optional[int] = None,
        max_wait_us: Optional[int] = None,
        cache_size: Optional[int] = None,
        n_samples: Optional[int] = None,
    ):
        config = config if config is not None else ServingConfig()
        legacy = {
            name: value
            for name, value in (
                ("max_batch", max_batch),
                ("max_wait_us", max_wait_us),
                ("cache_size", cache_size),
                ("n_samples", n_samples),
            )
            if value is not None
        }
        if legacy:
            warnings.warn(
                f"EstimationService({', '.join(sorted(legacy))}=...) keyword "
                "arguments are deprecated; pass "
                f"config=ServingConfig({', '.join(sorted(legacy))}=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = dataclasses.replace(config, **legacy)
        self.config = config
        self.registry = (
            registry
            if registry is not None
            else ModelRegistry(budget_bytes=config.budget_bytes)
        )
        self._schedulers: Dict[str, MicroBatchScheduler] = {}
        self._pools: Dict[str, WorkerPool] = {}
        self._refreshers: list[BackgroundRefresher] = []
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._cascades: Dict[str, EstimatorCascade] = {}
        self._fallbacks: Dict[str, object] = {}
        self._degraded: Dict[str, int] = {}
        self._fallback_errors: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._closed = False
        # Eager publish on hot-swap: the new version reaches every worker
        # pipe (in-band, ahead of any post-swap batch) before swap()
        # returns, so multiprocess serving never answers a post-swap
        # request from a stale worker version.
        self.registry.subscribe(self._on_swap)

    # ------------------------------------------------------------------
    # Model management (delegates to the registry)
    # ------------------------------------------------------------------
    def register(self, name: str, estimator: NeuroCard) -> "EstimationService":
        self.registry.register(name, estimator)
        return self

    def register_path(
        self, name: str, path, schema: JoinSchema
    ) -> "EstimationService":
        self.registry.register_path(name, path, schema)
        return self

    def swap(self, name: str, estimator: NeuroCard) -> int:
        """Hot-swap ``name``; in-flight batches finish on the old model."""
        return self.registry.swap(name, estimator)

    def refresh(
        self, name: str, new_schema: JoinSchema, train_tuples: Optional[int] = None
    ) -> int:
        """Incrementally retrain a *copy* onto a snapshot, then hot-swap it in.

        Readers never block: the version bump invalidates the scheduler's
        result cache so post-refresh submits recompute against the new model.
        """
        return self.registry.refresh(name, new_schema, train_tuples=train_tuples)

    def serve_with_updates(
        self,
        name: str,
        ingestor: StreamingIngestor,
        *,
        policy: Optional[RefreshPolicy] = None,
        monitor: Optional[DriftMonitor] = None,
        poll_interval: Optional[float] = None,
    ) -> BackgroundRefresher:
        """Keep ``name`` fresh against an ingest stream (started refresher).

        Attaches a :class:`~repro.serving.updates.BackgroundRefresher` that
        polls ``ingestor``, consults the drift monitor/policy, and hot-swaps
        refreshed models in behind this service's schedulers — traffic is
        never blocked, and the refresher is closed with the service.
        """
        refresher = BackgroundRefresher(
            self, name, ingestor,
            policy=policy if policy is not None else self.config.refresh_policy(),
            monitor=monitor,
            poll_interval=(
                poll_interval if poll_interval is not None
                else self.config.poll_interval
            ),
        )
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            self._refreshers.append(refresher)
            cascade = self._cascades.get(name)
        if cascade is not None:
            # Stale model -> the cascade demotes the neural tier's bound
            # (routing path), long before the breaker sees failures.
            self._wire_staleness(name, cascade, [refresher])
        return refresher.start()

    def register_fallback(
        self, model: Optional[str] = None, estimator=None
    ) -> "EstimationService":
        """Attach a degraded-mode fallback estimator behind ``model``'s breaker.

        With no ``estimator``, a training-free
        :class:`~repro.baselines.per_table.PerTableStatsEstimator` is built
        from the registered model's schema — exact on single-table
        conjunctions, independence-assumption across joins, and immune to
        whatever broke the primary (no weights, no workers, no artifacts).
        Once registered, primary failures are answered by the fallback and
        the per-model circuit breaker starts routing (see module docstring).
        """
        name = self._resolve(model)
        if name not in self.registry:
            raise ServingError(f"unknown model {name!r}")
        if estimator is None:
            schema = getattr(self.registry.get(name), "schema", None)
            if schema is None:
                raise ServingError(
                    f"model {name!r} exposes no schema; pass an explicit "
                    "fallback estimator"
                )
            from repro.baselines.per_table import PerTableStatsEstimator

            estimator = PerTableStatsEstimator(schema)
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            self._fallbacks[name] = estimator
        return self

    def breaker(self, model: Optional[str] = None) -> CircuitBreaker:
        """The (lazily created) circuit breaker in front of ``model``."""
        name = self._resolve(model)
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    failures=self.config.breaker_failures,
                    cooldown_s=self.config.breaker_cooldown_s,
                )
                self._breakers[name] = breaker
        return breaker

    # ------------------------------------------------------------------
    # Estimator cascade (routing path; distinct from the breaker above)
    # ------------------------------------------------------------------
    def attach_cascade(
        self, cascade: EstimatorCascade, model: Optional[str] = None
    ) -> "EstimationService":
        """Route ``model``'s submits through ``cascade``.

        The cascade's final tier must be its neural tier: queries routed
        there go through the registered model's micro-batching scheduler
        (seeds, caching, deadlines, breaker all apply); queries a cheaper
        tier answers are served inline and skip batching entirely.
        """
        name = self._resolve(model)
        if name not in self.registry:
            raise ServingError(f"unknown model {name!r}")
        if not cascade.final_tier.neural:
            raise ServingError(
                "the cascade's final tier must be registered with neural=True"
            )
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            self._cascades[name] = cascade
            refreshers = list(self._refreshers)
        self._wire_staleness(name, cascade, refreshers)
        return self

    def enable_cascade(
        self,
        model: Optional[str] = None,
        *,
        estimators: Optional[Dict[str, object]] = None,
        calibration: Optional[CascadeCalibration] = None,
    ) -> EstimatorCascade:
        """Build + attach the cascade described by ``config.cascade``.

        Tier names in ``config.cascade.tiers`` (final entry = the neural
        tier, served by the registered model) resolve to built-ins —
        ``per_table``/``stats``, ``deepdb``/``spn``, ``join_samples``/
        ``sampling`` — unless ``estimators`` supplies an instance for that
        name. Calibration comes from the ``calibration`` argument, else
        ``config.cascade.calibration_path`` when the file exists, else the
        cascade starts uncalibrated (everything escalates until
        :meth:`EstimatorCascade.calibrate` runs).
        """
        cfg = self.config.cascade
        if cfg is None:
            raise ServingError(
                "enable_cascade requires a config.cascade section "
                "(or build an EstimatorCascade and attach_cascade it)"
            )
        name = self._resolve(model)
        if name not in self.registry:
            raise ServingError(f"unknown model {name!r}")
        primary = self.registry.get(name)
        schema = getattr(primary, "schema", None)
        if schema is None:  # bare inference engines carry it on the layout
            layout = getattr(primary, "layout", None)
            schema = getattr(layout, "schema", None)
        if schema is None:
            raise ServingError(
                f"model {name!r} exposes no schema; cascade tiers cannot be built"
            )
        if calibration is None and cfg.calibration_path is not None:
            path = Path(cfg.calibration_path)
            if path.exists():
                calibration = CascadeCalibration.load(path)
        cascade = EstimatorCascade(
            schema,
            calibration=calibration,
            default_max_q_error=cfg.default_max_q_error,
            default_budget_ms=cfg.default_budget_ms,
            min_class_queries=cfg.min_class_queries,
            demote_staleness_qerror=cfg.demote_staleness_qerror,
        )
        supplied = dict(estimators or {})
        for tier_name in cfg.tiers[:-1]:
            estimator = supplied.pop(tier_name, None)
            if estimator is None:
                estimator = self._build_tier(tier_name, schema)
            cascade.register(tier_name, estimator)
        final_name = cfg.tiers[-1]
        cascade.register(final_name, supplied.pop(final_name, primary), neural=True)
        if supplied:
            raise ServingError(
                f"estimators supplied for unknown cascade tiers: {sorted(supplied)}"
            )
        self.attach_cascade(cascade, name)
        return cascade

    @staticmethod
    def _build_tier(tier_name: str, schema: JoinSchema):
        """Default estimator for a named tier (lazy imports keep layering)."""
        if tier_name in ("per_table", "stats"):
            from repro.baselines.per_table import PerTableStatsEstimator

            return PerTableStatsEstimator(schema)
        if tier_name in ("deepdb", "spn"):
            from repro.baselines.spn import DeepDBEstimator

            return DeepDBEstimator(schema)
        if tier_name in ("join_samples", "sampling"):
            from repro.baselines.sampling import JoinSampleEstimator

            return JoinSampleEstimator(schema)
        raise ServingError(
            f"no built-in estimator for cascade tier {tier_name!r}; "
            "pass estimators={...} with an instance"
        )

    def cascade_for(self, model: Optional[str] = None) -> Optional[EstimatorCascade]:
        """The cascade attached to ``model`` (None when routing is off)."""
        name = self._resolve(model)
        with self._lock:
            return self._cascades.get(name)

    def _neural_latency_ms(self, name: str) -> Optional[float]:
        with self._lock:
            scheduler = self._schedulers.get(name)
        if scheduler is None:
            return None
        return scheduler.predicted_latency_ms()

    @staticmethod
    def _wire_staleness(
        name: str, cascade: EstimatorCascade, refreshers
    ) -> None:
        """Point the cascade's demotion signal at ``name``'s drift monitor."""
        if cascade.staleness_provider is not None:
            return
        for refresher in refreshers:
            if refresher.name != name:
                continue
            monitor, ingestor = refresher.monitor, refresher.ingestor

            def _staleness() -> float:
                return monitor.observe(*ingestor.snapshot()).staleness_qerror

            cascade.staleness_provider = _staleness
            return

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def scheduler(self, model: Optional[str] = None) -> MicroBatchScheduler:
        """The (lazily created) scheduler in front of ``model``."""
        name = self._resolve(model)
        if name not in self.registry:
            raise ServingError(f"unknown model {name!r}")
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            scheduler = self._schedulers.get(name)
            if scheduler is None:
                pool = None
                if self.config.workers > 0:
                    pool = self._pools.get(name)
                    if pool is None:
                        pool = WorkerPool(
                            lambda: self.registry.get_with_version(name),
                            name=name,
                            **self.config.pool_opts(),
                        )
                        self._pools[name] = pool
                scheduler = MicroBatchScheduler(
                    lambda: self.registry.get_with_version(name),
                    name=name,
                    executor=pool,
                    **self.config.scheduler_opts(),
                )
                self._schedulers[name] = scheduler
        return scheduler

    def pool(self, model: Optional[str] = None) -> Optional[WorkerPool]:
        """The worker pool behind ``model`` (None when serving inline)."""
        name = self._resolve(model)
        with self._lock:
            return self._pools.get(name)

    @property
    def refreshers(self) -> tuple:
        """Attached background refreshers (health/metrics introspection)."""
        with self._lock:
            return tuple(self._refreshers)

    def _on_swap(self, name: str, estimator: NeuroCard, version: int) -> None:
        with self._lock:
            pool = self._pools.get(name)
        if pool is not None:
            pool.publish(estimator, version, wait=True)

    def submit(
        self,
        query: Query,
        *,
        model: Optional[str] = None,
        seed: Optional[int] = None,
        n_samples: Optional[int] = None,
        max_rel_var: Optional[float] = None,
        deadline: Optional[float] = None,
        budget_ms: Optional[float] = None,
        max_q_error: Optional[float] = None,
    ) -> Future:
        """Submit ``query``; routed through the cascade / breaker when attached.

        ``deadline`` is an absolute ``time.monotonic()`` timestamp: requests
        still queued when it passes fail with
        :class:`~repro.errors.DeadlineError` *before* dispatch, so expired
        work never occupies a worker. Returned futures carry a ``degraded``
        attribute (True when the answer came from the fallback estimator).

        With a cascade attached (:meth:`attach_cascade`), ``budget_ms`` and
        ``max_q_error`` are the caller's per-query contract: a cheap tier
        whose calibrated bound fits answers inline — no queueing, no
        batching — and the returned future carries ``future.tier``; only
        escalated queries reach the scheduler (and the breaker's failure
        path). Without a cascade both knobs are ignored.
        """
        name = self._resolve(model)
        cascade = self._cascades.get(name)
        if cascade is not None:
            decision = cascade.route(
                query,
                max_q_error=max_q_error,
                budget_ms=budget_ms,
                neural_latency_ms=self._neural_latency_ms(name),
            )
            if not decision.tier.neural:
                inline = self._answer_inline(
                    cascade, decision.tier, query, deadline
                )
                if inline is not None:
                    return inline
                # Tier raised a serving (non-Query) error: escalate this
                # query to the neural tier instead of failing the caller.
            future = self._submit_neural(
                name,
                query,
                seed=seed,
                n_samples=n_samples,
                max_rel_var=max_rel_var,
                deadline=deadline,
            )
            final_name = cascade.final_tier.name
            cascade.record_answer(final_name)
            future.tier = final_name
            return future
        return self._submit_neural(
            name,
            query,
            seed=seed,
            n_samples=n_samples,
            max_rel_var=max_rel_var,
            deadline=deadline,
        )

    def _answer_inline(
        self,
        cascade: EstimatorCascade,
        tier: Tier,
        query: Query,
        deadline: Optional[float],
    ) -> Optional[Future]:
        """Serve ``query`` from a cheap tier, inline on the caller's thread.

        Returns None when the tier fails with a serving error (the caller
        escalates to the neural path); invalid-query errors raise — they
        are the caller's bug on every tier alike.
        """
        future: Future = Future()
        future.degraded = False
        future.tier = tier.name
        if deadline is not None and time.monotonic() >= deadline:
            future.set_exception(
                DeadlineError(
                    f"deadline expired before inline tier {tier.name!r} ran"
                )
            )
            return future
        try:
            value = float(tier.estimator.estimate(query))
        except QueryError:
            raise
        except Exception:
            cascade.record_tier_error(tier.name)
            return None
        cascade.record_answer(tier.name)
        future.set_result(value)
        return future

    def _submit_neural(
        self,
        name: str,
        query: Query,
        *,
        seed: Optional[int],
        n_samples: Optional[int],
        max_rel_var: Optional[float],
        deadline: Optional[float],
    ) -> Future:
        """The pre-cascade submit path: scheduler + breaker/fallback cascade."""
        fallback = self._fallbacks.get(name)
        if fallback is None:
            # No fallback registered: original semantics, untouched — the
            # breaker isn't even consulted, so errors surface verbatim.
            return self.scheduler(name).submit(
                query,
                seed=seed,
                n_samples=n_samples,
                max_rel_var=max_rel_var,
                deadline=deadline,
            )

        breaker = self.breaker(name)
        route = breaker.allow()
        if route == FALLBACK:
            # Open circuit: skip the broken primary entirely (no scheduler
            # queueing, no worker dispatch) and answer from the fallback.
            outer: Future = Future()
            self._resolve_degraded(outer, name, query, fallback, cause=None)
            return outer

        probe = route == PROBE
        try:
            inner = self.scheduler(name).submit(
                query,
                seed=seed,
                n_samples=n_samples,
                max_rel_var=max_rel_var,
                deadline=deadline,
            )
        except QueryError:
            if probe:
                breaker.record_success(probe=True)  # release the probe slot
            raise
        except Exception as exc:
            # Submit-time serving failure (closed scheduler, dead flusher,
            # artifact load error): counts against the breaker and cascades.
            breaker.record_failure(probe=probe)
            outer = Future()
            self._resolve_degraded(outer, name, query, fallback, cause=exc)
            return outer

        outer = Future()
        outer.degraded = False

        def _settle(done: Future) -> None:
            exc = done.exception()
            if exc is None:
                breaker.record_success(probe=probe)
                outer.set_result(done.result())
            elif isinstance(exc, (DeadlineError, QueryError)):
                # The caller's signal (expired budget / invalid query) —
                # neither a serving failure nor something to answer for.
                if probe:
                    breaker.record_success(probe=True)
                outer.set_exception(exc)
            else:
                breaker.record_failure(probe=probe)
                self._resolve_degraded(outer, name, query, fallback, cause=exc)

        inner.add_done_callback(_settle)
        return outer

    def _resolve_degraded(
        self, outer: Future, name: str, query: Query, fallback, *, cause
    ) -> None:
        """Answer ``outer`` from the fallback estimator (or the original error)."""
        try:
            estimate = float(fallback.estimate(query))
        except Exception as fallback_exc:
            with self._lock:
                self._fallback_errors[name] = self._fallback_errors.get(name, 0) + 1
            outer.set_exception(cause if cause is not None else fallback_exc)
            return
        with self._lock:
            self._degraded[name] = self._degraded.get(name, 0) + 1
        outer.degraded = True
        outer.set_result(estimate)

    def estimate(
        self, query: Query, *, model: Optional[str] = None, seed: Optional[int] = None
    ) -> float:
        return self.submit(query, model=model, seed=seed).result()

    def estimate_batch(
        self, queries: Sequence[Query], *, model: Optional[str] = None
    ) -> np.ndarray:
        futures = [self.submit(q, model=model) for q in queries]
        return np.array([f.result() for f in futures], dtype=np.float64)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict]:
        """Scheduler telemetry per model (under ``models``) + registry counters."""
        with self._lock:
            schedulers = dict(self._schedulers)
            pools = dict(self._pools)
            refreshers = list(self._refreshers)
            breakers = dict(self._breakers)
            cascades = dict(self._cascades)
            fallbacks = set(self._fallbacks)
            degraded = dict(self._degraded)
            fallback_errors = dict(self._fallback_errors)
        stats = {
            "models": {name: s.stats() for name, s in schedulers.items()},
            "registry": {
                "n_models": len(self.registry.names()),
                "resident_bytes": self.registry.resident_bytes,
                "loads": self.registry.loads,
                "evictions": self.registry.evictions,
            },
        }
        if pools:
            stats["pools"] = {name: p.stats() for name, p in pools.items()}
        if refreshers:
            stats["updates"] = {r.name: r.stats() for r in refreshers}
        if breakers or fallbacks:
            resilience: Dict[str, Dict] = {}
            for name in sorted(set(breakers) | fallbacks):
                entry = breakers[name].stats() if name in breakers else {}
                entry["fallback_registered"] = int(name in fallbacks)
                entry["degraded_responses"] = degraded.get(name, 0)
                entry["fallback_errors"] = fallback_errors.get(name, 0)
                resilience[name] = entry
            stats["resilience"] = resilience
        if cascades:
            stats["cascade"] = {name: c.stats() for name, c in cascades.items()}
        return stats

    def close(self) -> None:
        """Stop refreshers, then schedulers, then worker pools. Idempotent."""
        with self._lock:
            self._closed = True
            schedulers = list(self._schedulers.values())
            self._schedulers.clear()
            pools = list(self._pools.values())
            self._pools.clear()
            refreshers = list(self._refreshers)
            self._refreshers.clear()
        # Refreshers first: a refresh completing after its schedulers are
        # gone would be wasted work (though harmless — swaps touch only the
        # registry). Pools last: schedulers drain their queues into the
        # pool, so the pool must outlive every flusher.
        for refresher in refreshers:
            refresher.close()
        for scheduler in schedulers:
            scheduler.close()
        for pool in pools:
            pool.close()

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _resolve(self, model: Optional[str]) -> str:
        if model is not None:
            return model
        names = self.registry.names()
        if len(names) != 1:
            raise ServingError(
                "model name required when the registry holds "
                f"{len(names)} models: {sorted(names)}"
            )
        return names[0]

    @property
    def size_bytes(self) -> Optional[int]:
        """Resident model bytes (harness Size column for single-model services)."""
        return self.registry.resident_bytes or None
