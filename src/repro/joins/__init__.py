"""Join substrate: Exact-Weight counts, uniform full-join sampling, ground truth.

Implements §4 of the paper: the join-count dynamic program over the full
outer join (`JoinCounts`), the uniform i.i.d. sampler with virtual columns
(`FullJoinSampler` with its per-row `LoopJoinSampler` oracle, the
`ThreadedSampler` prefetch pool), and — as the evaluation oracle — a
Yannakakis-style exact cardinality executor (`query_cardinality`).
"""

from repro.joins.counts import JoinCounts
from repro.joins.executor import inner_join_count, query_cardinality, query_selectivity
from repro.joins.sampler import (
    ColumnSpec,
    FullJoinSampler,
    LoopJoinSampler,
    SampleBatch,
    ThreadedSampler,
    joined_column_specs,
)

__all__ = [
    "JoinCounts",
    "FullJoinSampler",
    "LoopJoinSampler",
    "ThreadedSampler",
    "SampleBatch",
    "ColumnSpec",
    "joined_column_specs",
    "query_cardinality",
    "query_selectivity",
    "inner_join_count",
]
