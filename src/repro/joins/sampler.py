"""Uniform i.i.d. sampling of the full outer join (paper §4).

``FullJoinSampler`` draws simple random samples *with replacement* from the
full outer join without materializing it: the root tuple is drawn with
probability proportional to its join count, then the join tree is walked
top-down, sampling each child tuple among the parent's join partners with
probability proportional to the child's own join count. Virtual columns —
per-table indicators and per-(table, edge) fanouts (§6) — are appended on
the fly, exactly as the paper tasks the sampler to do.

The hot path is fully array-based: ``sample_row_id_matrix`` draws a whole
``(batch, n_tables)`` row-id matrix per call, tracking unresolved orphan
fragments as an integer table-index array (no per-row control flow).
``LoopJoinSampler`` keeps the per-row scalar walk as the correctness oracle
and as the baseline for the training-throughput benchmarks.

``ThreadedSampler`` reproduces the paper's parallel sampling setup (§7.4,
Fig. 7b) as a multi-worker prefetch pool: producer threads fill a bounded
queue (backpressure), optionally tokenizing batches in the worker, and a
worker failure surfaces as :class:`SamplerError` instead of a hang.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import DataError, SamplerError
from repro.joins.counts import JoinCounts
from repro.relational.column import NULL_CODE
from repro.relational.schema import JoinSchema

#: A batch of sampled full-join tuples: column full-name -> int64 array.
SampleBatch = Dict[str, np.ndarray]


@dataclass(frozen=True)
class ColumnSpec:
    """One column of the (virtual) full-join relation the model learns.

    ``kind`` is ``"content"`` (a base-table column, emitted as that table's
    dictionary codes, NULL code 0), ``"indicator"`` (0/1: does this full-join
    row have a real tuple from ``table``), or ``"fanout"`` (the frequency of
    this row's key in ``table`` on edge ``edge_name``; 1 for NULL tuples).
    """

    kind: str
    table: str
    name: str
    column: Optional[str] = None
    edge_name: Optional[str] = None


def joined_column_specs(
    schema: JoinSchema,
    counts: JoinCounts,
    exclude: Iterable[str] = (),
    include_unit_fanouts: bool = False,
) -> List[ColumnSpec]:
    """The full-join column universe, in the paper's §6 ordering.

    Content columns first (schema BFS order, table definition order), then
    all indicator columns, then fanout columns. Fanouts that are constantly 1
    (unique keys, e.g. primary keys) are omitted unless requested — the paper
    omits them too (Fig. 4c).

    ``exclude`` lists ``"table.column"`` content columns to leave out of the
    model (e.g. surrogate ID columns nobody filters on).
    """
    excluded = set(exclude)
    specs: List[ColumnSpec] = []
    order = schema.bfs_order()
    for table_name in order:
        for col in schema.table(table_name).column_names:
            full = f"{table_name}.{col}"
            if full not in excluded:
                specs.append(ColumnSpec("content", table_name, full, column=col))
    for table_name in order:
        specs.append(ColumnSpec("indicator", table_name, f"__in_{table_name}"))
    for table_name in order:
        for edge in schema.incident_edges(table_name):
            key = "_".join(edge.columns_of(table_name))
            if include_unit_fanouts or counts.max_fanout(table_name, edge.name) > 1:
                specs.append(
                    ColumnSpec(
                        "fanout",
                        table_name,
                        f"__fanout_{table_name}.{key}",
                        edge_name=edge.name,
                    )
                )
    return specs


class _EdgeSamplingState:
    """Flat cumulative-weight layout for vectorized within-group sampling."""

    def __init__(self, ops, child_weights: np.ndarray):
        groups = ops.child_groups
        self.parent_group_idx = ops.parent_group_idx
        self.sorted_rows = groups.row_ids
        flat_w = child_weights[self.sorted_rows]
        self.flat_cumw = np.cumsum(flat_w)
        self.group_start = groups.offsets[:-1]
        self.group_end = groups.offsets[1:]
        base = np.where(
            self.group_start > 0, self.flat_cumw[self.group_start - 1], 0.0
        )
        self.group_base = base
        self.group_total = (
            self.flat_cumw[np.maximum(self.group_end - 1, 0)] - base
            if len(self.flat_cumw)
            else np.zeros(0)
        )
        self.orphan_rows = ops.orphan_rows
        self.orphan_cumw = np.cumsum(child_weights[self.orphan_rows])
        self.orphan_total = float(self.orphan_cumw[-1]) if len(self.orphan_cumw) else 0.0


class FullJoinSampler:
    """Uniform sampler over the full outer join of a schema (§4.1)."""

    def __init__(
        self,
        schema: JoinSchema,
        counts: Optional[JoinCounts] = None,
        specs: Optional[Sequence[ColumnSpec]] = None,
        exclude: Iterable[str] = (),
    ):
        self.schema = schema
        self.counts = counts if counts is not None else JoinCounts(schema)
        self.specs = (
            list(specs)
            if specs is not None
            else joined_column_specs(schema, self.counts, exclude=exclude)
        )
        self._order = schema.bfs_order()
        self._edges_topdown = [
            schema.parent_edge(t) for t in self._order if schema.parent_edge(t)
        ]
        root_w = self.counts.weights[schema.root]
        self._root_cumw = np.cumsum(root_w)
        self._root_rows_total = float(self._root_cumw[-1]) if len(root_w) else 0.0
        self._edge_state = {
            e.name: _EdgeSamplingState(
                self.counts.edge_ops[e.name], self.counts.weights[e.child]
            )
            for e in self._edges_topdown
        }
        self._tindex = {t: j for j, t in enumerate(self._order)}
        # Append bookkeeping: per-table row counts at construction time.
        # Streaming ingest appends rows *after* these watermarks, so an
        # updated snapshot can be verified as a pure append (prefix rows
        # untouched) and routed through :meth:`for_snapshot` instead of a
        # from-scratch sampler build.
        self.row_watermarks: Dict[str, int] = {
            t: schema.table(t).n_rows for t in self._order
        }
        # Fragment descent weights: for each table, the table *indices* of
        # its children (in child_edges order) and the cumulative NF values —
        # used when an orphan fragment is known to live strictly below a
        # table. Integer indices keep fragment routing pure array ops.
        self._descend = {
            t: (
                np.array(
                    [self._tindex[e.child] for e in schema.child_edges(t)],
                    dtype=np.int64,
                ),
                np.cumsum(
                    [self.counts.null_fragments[e.child] for e in schema.child_edges(t)]
                ),
            )
            for t in self._order
        }

    # ------------------------------------------------------------------
    @property
    def full_join_size(self) -> float:
        """|J|, the normalizing constant (§4.1)."""
        return self.counts.full_join_size

    def column_names(self) -> List[str]:
        return [s.name for s in self.specs]

    @property
    def table_order(self) -> List[str]:
        """Column order of :meth:`sample_row_id_matrix` (schema BFS order)."""
        return list(self._order)

    # ------------------------------------------------------------------
    # Append-aware snapshot routing (streaming ingest, §7.6)
    # ------------------------------------------------------------------
    def verify_append(self, new_schema: JoinSchema) -> Dict[str, int]:
        """Check ``new_schema`` is a pure append of this sampler's snapshot.

        A pure append keeps every existing row bitwise in place (codes up to
        this sampler's :attr:`row_watermarks` are unchanged) and keeps every
        column's dictionary, so one model vocabulary covers both snapshots
        and only the appended suffix is new data. Returns the number of
        appended rows per table; raises :class:`DataError` naming the first
        offending table/column otherwise.
        """
        appended: Dict[str, int] = {}
        for name in self._order:
            old = self.schema.table(name)
            new = new_schema.table(name)
            watermark = self.row_watermarks[name]
            if new.n_rows < watermark:
                raise DataError(
                    f"table {name!r} shrank from {watermark} to {new.n_rows} "
                    "rows; snapshots must be append-only"
                )
            if old.column_names != new.column_names:
                raise DataError(
                    f"table {name!r} changed columns; snapshots must share layout"
                )
            for col in old.column_names:
                ocol, ncol = old.column(col), new.column(col)
                if ocol.domain_size != ncol.domain_size:
                    raise DataError(
                        f"column {name}.{col} dictionary changed "
                        f"({ocol.domain_size} != {ncol.domain_size} codes); "
                        "snapshots must share dictionaries"
                    )
                if not np.array_equal(ocol.codes[:watermark], ncol.codes[:watermark]):
                    raise DataError(
                        f"column {name}.{col} mutated existing rows; snapshots "
                        "must be append-only"
                    )
            appended[name] = new.n_rows - watermark
        return appended

    def rebuilt(
        self, new_schema: JoinSchema, counts: Optional[JoinCounts] = None
    ) -> "FullJoinSampler":
        """A sampler over a new snapshot, reusing this one's column specs.

        Preserves the concrete sampler class, so biased ablation samplers
        survive refreshes too. The snapshot must share dictionaries with the
        old one (callers enforce this; :meth:`for_snapshot` additionally
        proves the pure-append contract).
        """
        return type(self)(
            new_schema,
            counts if counts is not None else JoinCounts(new_schema),
            specs=self.specs,
        )

    def for_snapshot(
        self, new_schema: JoinSchema, counts: Optional[JoinCounts] = None
    ) -> "FullJoinSampler":
        """A sampler over an *appended* snapshot (streaming-ingest path).

        Validates the append contract (:meth:`verify_append`) so the
        vectorized fragment-routing arrays are rebuilt from a snapshot known
        to extend — never rewrite — the rows this sampler was built on.
        """
        self.verify_append(new_schema)
        return self.rebuilt(new_schema, counts)

    # ------------------------------------------------------------------
    def sample_row_id_matrix(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` full-join rows as an ``(n, n_tables)`` id matrix.

        Column ``j`` holds row ids of ``table_order[j]``; -1 means the
        virtual ⊥ tuple. Each full-join tuple is drawn with probability
        1/|J| (simple random sample with replacement): either a row with a
        real root tuple, or an orphan fragment whose shallowest real tuple
        lives in some subtree.
        """
        if n <= 0:
            raise DataError("sample size must be positive")
        matrix = np.full((n, len(self._order)), -1, dtype=np.int64)
        self._fill_matrix(matrix, rng)
        return matrix

    def sample_row_ids(self, n: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Sample ``n`` full-join rows; per table, row ids with -1 meaning ⊥."""
        return self.row_ids_as_dict(self.sample_row_id_matrix(n, rng))

    def row_ids_as_dict(self, matrix: np.ndarray) -> Dict[str, np.ndarray]:
        """Per-table column views of a :meth:`sample_row_id_matrix` result."""
        return {t: matrix[:, j] for j, t in enumerate(self._order)}

    def _fill_matrix(self, matrix: np.ndarray, rng: np.random.Generator) -> None:
        """Fill a pre-allocated ``(m, n_tables)`` matrix of -1s in place.

        The override point for alternative sampling distributions (e.g. the
        biased IBJS-style sampler of the Table 5 ablation).
        """
        m = len(matrix)
        root = self.schema.root
        root_child_idx, root_cum = self._descend[root]
        fragment_total = float(root_cum[-1]) if len(root_cum) else 0.0
        total = self._root_rows_total + fragment_total
        if total <= 0:
            raise DataError("full join is empty; nothing to sample")
        targets = rng.random(m) * total
        real = targets < self._root_rows_total
        root_rows = np.full(m, -1, dtype=np.int64)
        if real.any():
            idx = np.searchsorted(self._root_cumw, targets[real], side="right")
            root_rows[real] = np.minimum(idx, len(self._root_cumw) - 1)
        matrix[:, self._tindex[root]] = root_rows

        # fragment[i] = index of the table whose subtree carries row i's
        # orphan fragment (-1 = none). Set for rows without a real root.
        fragment = np.full(m, -1, dtype=np.int64)
        if (~real).any():
            residual = targets[~real] - self._root_rows_total
            pick = np.minimum(
                np.searchsorted(root_cum, residual, side="left"), len(root_cum) - 1
            )
            fragment[~real] = root_child_idx[pick]

        for edge in self._edges_topdown:
            state = self._edge_state[edge.name]
            parents = matrix[:, self._tindex[edge.parent]]
            child = np.full(m, -1, dtype=np.int64)

            real_parent = parents >= 0
            if real_parent.any():
                groups = state.parent_group_idx[parents[real_parent]]
                hit = groups >= 0
                if hit.any():
                    gg = groups[hit]
                    u = 1.0 - rng.random(len(gg))
                    target = state.group_base[gg] + u * state.group_total[gg]
                    flat_idx = np.searchsorted(state.flat_cumw, target, side="left")
                    flat_idx = np.clip(
                        flat_idx, state.group_start[gg], state.group_end[gg] - 1
                    )
                    chosen = state.sorted_rows[flat_idx]
                    tmp = np.full(len(groups), -1, dtype=np.int64)
                    tmp[hit] = chosen
                    child[real_parent] = tmp

            child_t = self._tindex[edge.child]
            carries = fragment == child_t
            if carries.any():
                k = int(carries.sum())
                desc_child_idx, desc_cum = self._descend[edge.child]
                deeper_total = float(desc_cum[-1]) if len(desc_cum) else 0.0
                total_here = state.orphan_total + deeper_total
                u = (1.0 - rng.random(k)) * total_here
                take_orphan = u <= state.orphan_total
                picked = np.full(k, -1, dtype=np.int64)
                if take_orphan.any():
                    oidx = np.searchsorted(
                        state.orphan_cumw, u[take_orphan], side="left"
                    )
                    oidx = np.minimum(oidx, len(state.orphan_rows) - 1)
                    picked[take_orphan] = state.orphan_rows[oidx]
                child[carries] = picked
                # Resolve or push the fragment one level down.
                new_fragment = np.full(k, -1, dtype=np.int64)
                if (~take_orphan).any():
                    residual = u[~take_orphan] - state.orphan_total
                    pick = np.minimum(
                        np.searchsorted(desc_cum, residual, side="left"),
                        len(desc_cum) - 1,
                    )
                    new_fragment[~take_orphan] = desc_child_idx[pick]
                fragment[carries] = new_fragment

            matrix[:, child_t] = child

    # ------------------------------------------------------------------
    def assemble(self, rows: Dict[str, np.ndarray]) -> SampleBatch:
        """Materialize sampled row ids into the full-join column layout."""
        batch: SampleBatch = {}
        for spec in self.specs:
            r = rows[spec.table]
            real = r >= 0
            safe = np.maximum(r, 0)
            if spec.kind == "content":
                codes = self.schema.table(spec.table).codes(spec.column)
                batch[spec.name] = np.where(real, codes[safe], NULL_CODE)
            elif spec.kind == "indicator":
                batch[spec.name] = real.astype(np.int64)
            else:
                fanout = self.counts.edge_ops[spec.edge_name].fanout_of(spec.table)
                batch[spec.name] = np.where(real, fanout[safe], 1)
        return batch

    def sample_batch(self, n: int, rng: np.random.Generator) -> SampleBatch:
        """Draw ``n`` uniform full-join tuples as model-ready columns."""
        return self.assemble(self.sample_row_ids(n, rng))


class LoopJoinSampler(FullJoinSampler):
    """Per-row reference sampler: one scalar top-down walk per tuple.

    Implements exactly the distribution of :class:`FullJoinSampler` with
    per-row Python control flow (the pre-vectorization code path). It is the
    correctness oracle for the vectorized matrix sampler — equivalence tests
    compare row-id distributions under pinned seeds — and the baseline that
    ``benchmarks/smoke_train_throughput.py`` measures speedups against.
    """

    def _fill_matrix(self, matrix: np.ndarray, rng: np.random.Generator) -> None:
        _, root_cum = self._descend[self.schema.root]
        fragment_total = float(root_cum[-1]) if len(root_cum) else 0.0
        if self._root_rows_total + fragment_total <= 0:
            raise DataError("full join is empty; nothing to sample")
        for row in matrix:
            self._sample_one(row, rng)

    def _sample_one(self, row: np.ndarray, rng: np.random.Generator) -> None:
        root = self.schema.root
        root_child_idx, root_cum = self._descend[root]
        fragment_total = float(root_cum[-1]) if len(root_cum) else 0.0
        target = rng.random() * (self._root_rows_total + fragment_total)
        fragment = -1
        if target < self._root_rows_total:
            j = int(np.searchsorted(self._root_cumw, target, side="right"))
            row[self._tindex[root]] = min(j, len(self._root_cumw) - 1)
        else:
            j = int(np.searchsorted(root_cum, target - self._root_rows_total, side="left"))
            fragment = int(root_child_idx[min(j, len(root_cum) - 1)])

        for edge in self._edges_topdown:
            state = self._edge_state[edge.name]
            parent = int(row[self._tindex[edge.parent]])
            child_t = self._tindex[edge.child]
            child = -1
            if parent >= 0:
                g = int(state.parent_group_idx[parent])
                if g >= 0:
                    u = 1.0 - rng.random()
                    target = state.group_base[g] + u * state.group_total[g]
                    j = int(np.searchsorted(state.flat_cumw, target, side="left"))
                    j = min(max(j, int(state.group_start[g])), int(state.group_end[g]) - 1)
                    child = int(state.sorted_rows[j])
            elif fragment == child_t:
                desc_child_idx, desc_cum = self._descend[edge.child]
                deeper_total = float(desc_cum[-1]) if len(desc_cum) else 0.0
                u = (1.0 - rng.random()) * (state.orphan_total + deeper_total)
                if u <= state.orphan_total:
                    j = int(np.searchsorted(state.orphan_cumw, u, side="left"))
                    child = int(state.orphan_rows[min(j, len(state.orphan_rows) - 1)])
                    fragment = -1
                else:
                    j = int(np.searchsorted(desc_cum, u - state.orphan_total, side="left"))
                    fragment = int(desc_child_idx[min(j, len(desc_cum) - 1)])
            row[child_t] = child


class InnerJoinSampler:
    """Uniform sampling of the *inner* join of a connected table subset.

    Used by the JOB-light-ranges / JOB-M query generators (§7.1), which draw
    a tuple from each query graph's inner join result to pick filter literals
    that guarantee non-empty answers. Same Exact-Weight machinery as the full
    join, but match-less branches get weight zero instead of pairing with ⊥.
    """

    def __init__(self, schema: JoinSchema, counts: Optional[JoinCounts] = None):
        self.schema = schema
        self.counts = counts if counts is not None else JoinCounts(schema)

    def sample_row_ids(
        self, tables: Sequence[str], n: int, rng: np.random.Generator
    ) -> Dict[str, np.ndarray]:
        """Sample ``n`` inner-join tuples over ``tables``; per-table row ids.

        Raises :class:`DataError` when the inner join is empty.
        """
        tables = list(tables)
        root = self.schema.query_root(tables)
        in_query = set(tables)
        order = self.schema.bfs_order(root=root, within=tables)

        # Bottom-up inner-join weights restricted to the query subtree.
        weights: Dict[str, np.ndarray] = {}
        for t in reversed(order):
            w = np.ones(self.schema.table(t).n_rows, dtype=np.float64)
            for edge in self.schema.child_edges(t):
                if edge.child in in_query:
                    w *= self.counts.edge_ops[edge.name].match_sums(weights[edge.child])
            weights[t] = w

        total = weights[root].sum()
        if total <= 0:
            raise DataError(f"inner join over {tables} is empty")
        out: Dict[str, np.ndarray] = {}
        cum = np.cumsum(weights[root])
        targets = rng.random(n) * total
        out[root] = np.minimum(
            np.searchsorted(cum, targets, side="right"), len(cum) - 1
        )
        for t in order:
            for edge in self.schema.child_edges(t):
                if edge.child not in in_query:
                    continue
                ops = self.counts.edge_ops[edge.name]
                state = _EdgeSamplingState(ops, weights[edge.child])
                groups = state.parent_group_idx[out[t]]
                if (groups < 0).any():
                    raise DataError("inner-join sampling hit a match-less parent")
                u = 1.0 - rng.random(n)
                target = state.group_base[groups] + u * state.group_total[groups]
                idx = np.searchsorted(state.flat_cumw, target, side="left")
                idx = np.clip(idx, state.group_start[groups], state.group_end[groups] - 1)
                out[edge.child] = state.sorted_rows[idx]
        return out


class ThreadedSampler:
    """Multi-worker prefetch pool over a :class:`FullJoinSampler`.

    Mirrors the paper's background sampling threads (§2.2, Fig. 7b):
    ``n_threads`` producers push batches into a bounded queue (backpressure:
    producers block while ``max_queued`` batches are pending); the training
    loop consumes with :meth:`get_batch`. Each worker owns an independent
    seeded generator, so samples stay i.i.d. regardless of thread count.

    ``encode`` moves per-batch post-processing into the workers: it maps the
    drawn ``(batch, n_tables)`` row-id matrix to the payload ``get_batch``
    returns (the fused tokenize path hands it a
    :meth:`repro.core.encoding.FusedEncoder.encode_row_ids`). Without it,
    workers produce assembled :data:`SampleBatch` dicts.

    A worker failure is recorded and re-raised from :meth:`get_batch` as
    :class:`SamplerError` — consumers fail fast instead of hanging until
    timeout. :meth:`close` is idempotent and drains the queue so blocked
    producers shut down promptly.
    """

    def __init__(
        self,
        sampler: FullJoinSampler,
        batch_size: int,
        n_threads: int = 4,
        seed: int = 0,
        max_queued: int = 16,
        encode: Optional[Callable[[np.ndarray], object]] = None,
    ):
        self.sampler = sampler
        self.batch_size = batch_size
        self._encode = encode
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max_queued)
        self._stop = threading.Event()
        self._closed = False
        self._failure: Optional[BaseException] = None
        self._failed = threading.Event()
        seeds = np.random.SeedSequence(seed).spawn(n_threads)
        self._threads = [
            threading.Thread(
                target=self._produce, args=(np.random.default_rng(s),), daemon=True
            )
            for s in seeds
        ]
        for t in self._threads:
            t.start()

    def _produce(self, rng: np.random.Generator) -> None:
        try:
            while not self._stop.is_set():
                rows = self.sampler.sample_row_id_matrix(self.batch_size, rng)
                if self._encode is not None:
                    payload = self._encode(rows)
                else:
                    payload = self.sampler.assemble(self.sampler.row_ids_as_dict(rows))
                while not self._stop.is_set():
                    try:
                        self._queue.put(payload, timeout=0.05)
                        break
                    except queue.Full:
                        continue
        except BaseException as exc:  # propagate to the consumer, don't hang it
            if self._failure is None:
                self._failure = exc
            self._failed.set()

    def _raise_failure(self) -> None:
        raise SamplerError(
            f"sampler worker died: {type(self._failure).__name__}: {self._failure}"
        ) from self._failure

    def get_batch(self, timeout: float = 30.0):
        """Blocking fetch of the next produced batch.

        Raises :class:`SamplerError` if the pool is closed, a producer died,
        or nothing arrives within ``timeout`` seconds.
        """
        if self._closed:
            raise SamplerError("sampler pool is closed")
        deadline = time.monotonic() + timeout
        while True:
            if self._failed.is_set():
                self._raise_failure()
            try:
                return self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._failed.is_set():
                    self._raise_failure()
                if not any(t.is_alive() for t in self._threads):
                    raise SamplerError("all sampler workers exited; pool is drained")
                if time.monotonic() >= deadline:
                    raise SamplerError(
                        f"no batch produced within {timeout:.1f}s "
                        f"({len(self._threads)} workers alive)"
                    )

    def close(self) -> None:
        """Stop producers and join threads; safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        # Drain so producers blocked on a full queue observe the stop flag.
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        for t in self._threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "ThreadedSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
