"""Exact Weight join counts for the full outer join (paper §4.1).

``JoinCounts`` computes, for every table ``T_i`` and tuple ``t``, the number
of full-outer-join rows its subtree contributes (Eq. 7), bottom-up in time
linear in the total number of rows.

NULL handling follows SQL full-outer-join semantics. A full-join row either

* contains a real tuple of the root table — counted by ``w_root`` — or
* is an *orphan fragment*: its shallowest real tuple is a row of some
  non-root table with no join partner in its parent; all tables outside that
  row's subtree are NULL. Orphan fragments from different subtrees never
  co-occur in one row.

A real tuple whose child table has no match pairs with that child's virtual
NULL tuple, contributing exactly one combination for the whole child
subtree (factor 1 in Eq. 7). (The paper's description, which lets a parent's
⊥ pair independently per child, degenerates when orphans are common — see
DESIGN.md; with the foreign-key-consistent IMDB data the two formulations
coincide.)
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.joins.edgeops import EdgeOps
from repro.relational.schema import JoinSchema


class JoinCounts:
    """Join-count tables for a schema snapshot.

    Attributes
    ----------
    weights:
        Per table, a float64 array ``w[t]`` over rows: the number of
        full-join rows of the table's *subtree* in which row ``t`` is this
        table's tuple (Eq. 7). At the root this is the full-join
        multiplicity of the root tuple.
    orphan_sums:
        Per non-root table ``c``, ``Σ_{r ∈ orphans(c)} w_c(r)`` — rows of
        ``c`` with no join partner in the parent, weighted by their subtree
        combinations.
    null_fragments:
        Per table ``c``, ``NF(c) = orphan_sum(c) + Σ_{d∈children(c)} NF(d)``:
        the number of full-join rows whose shallowest real tuple lives in
        ``c``'s subtree while ``c``'s parent chain is NULL.
    full_join_size:
        ``Σ_t w_root(t) + Σ_{c∈children(root)} NF(c)`` — the normalizing
        constant |J| of §4.1.
    edge_ops:
        Per edge name, the :class:`EdgeOps` probe machinery (reused by the
        sampler, the exact executor and IBJS).
    """

    def __init__(self, schema: JoinSchema):
        self.schema = schema
        self.edge_ops: Dict[str, EdgeOps] = {
            edge.name: EdgeOps(schema, edge) for edge in schema.edges
        }
        self.weights: Dict[str, np.ndarray] = {}
        self.orphan_sums: Dict[str, float] = {}
        self.null_fragments: Dict[str, float] = {}
        self._run_dynamic_program()
        root = schema.root
        self.full_join_size = float(
            self.weights[root].sum()
            + sum(self.null_fragments[e.child] for e in schema.child_edges(root))
        )

    # ------------------------------------------------------------------
    def _run_dynamic_program(self) -> None:
        order = list(reversed(self.schema.bfs_order()))
        for table_name in order:
            table = self.schema.table(table_name)
            w = np.ones(table.n_rows, dtype=np.float64)
            for edge in self.schema.child_edges(table_name):
                ops = self.edge_ops[edge.name]
                match = ops.match_sums(self.weights[edge.child])
                # A parent tuple with no child match pairs with the child's
                # virtual NULL tuple: exactly one combination for the whole
                # child subtree (w >= 1 everywhere, so match == 0 iff no
                # matching rows).
                w *= np.where(match > 0, match, 1.0)
            self.weights[table_name] = w

            parent_edge = self.schema.parent_edge(table_name)
            if parent_edge is not None:
                ops = self.edge_ops[parent_edge.name]
                self.orphan_sums[table_name] = float(w[ops.orphan_rows].sum())
            fragment = self.orphan_sums.get(table_name, 0.0)
            for edge in self.schema.child_edges(table_name):
                fragment += self.null_fragments[edge.child]
            # For the root, NF excludes orphan_sum (the root has no parent);
            # its children's NF values enter full_join_size directly.
            self.null_fragments[table_name] = fragment

    # ------------------------------------------------------------------
    def root_weights(self) -> np.ndarray:
        """Join counts of the root table's rows w.r.t. the entire full join."""
        return self.weights[self.schema.root]

    def child_fragment_weight(self, table_name: str) -> float:
        """Σ NF over ``table_name``'s children (weight of deeper fragments)."""
        return float(
            sum(
                self.null_fragments[e.child]
                for e in self.schema.child_edges(table_name)
            )
        )

    def max_fanout(self, table: str, edge_name: str) -> int:
        """Largest fanout value of a (table, edge) pair; 1 for unique keys."""
        ops = self.edge_ops[edge_name]
        return int(ops.fanout_of(table).max(initial=1))
