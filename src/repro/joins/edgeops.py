"""Per-edge probe/group structures shared by counts, sampler, executor, IBJS.

For every join edge we precompute, once per schema snapshot:

* the child rows grouped by their (packed) key,
* for every *parent row*, the index of its matching child group (or -1),
* which child rows are *orphans* (match no parent row — they pair with the
  parent's virtual NULL tuple in the full outer join),
* per-row *fanouts* on both sides: the frequency of each row's own key in
  its own table (1 for NULL-containing keys), the statistic Eq. 9 divides by.
"""

from __future__ import annotations

import numpy as np

from repro.joins import keyops
from repro.relational.column import NULL_CODE
from repro.relational.schema import JoinEdge, JoinSchema


class EdgeOps:
    """All precomputed lookup machinery for one schema edge."""

    def __init__(self, schema: JoinSchema, edge: JoinEdge):
        self.edge = edge
        parent = schema.table(edge.parent)
        child = schema.table(edge.child)

        parent_cols = [parent.column(c) for c in edge.parent_columns]
        child_cols = [child.column(c) for c in edge.child_columns]
        radices = [c.domain_size for c in child_cols]

        # Build side: child rows grouped by their own packed key. NULL keys
        # pack normally (they form never-probed groups).
        child_mat = np.stack([c.codes for c in child_cols], axis=1)
        self.child_packed = keyops.pack_codes(child_mat, radices, null_is_invalid=False)
        self.child_groups = keyops.GroupedRows(self.child_packed)

        # Probe side: each parent row's key translated into the child's code
        # space; NULL or untranslatable keys become -1 (match nothing).
        p_to_c = [
            keyops.translation_array(pc, cc) for pc, cc in zip(parent_cols, child_cols)
        ]
        probe_mat = np.stack(
            [tr[pc.codes] for tr, pc in zip(p_to_c, parent_cols)], axis=1
        )
        probe_packed = keyops.pack_codes(probe_mat, radices, null_is_invalid=True)
        self.parent_group_idx = self.child_groups.find(probe_packed)

        # Orphans: child rows whose key matches no parent row.
        parent_radices = [c.domain_size for c in parent_cols]
        parent_own = keyops.pack_codes(
            np.stack([c.codes for c in parent_cols], axis=1),
            parent_radices,
            null_is_invalid=True,
        )
        parent_groups = keyops.GroupedRows(parent_own)
        c_to_p = [
            keyops.translation_array(cc, pc) for cc, pc in zip(child_cols, parent_cols)
        ]
        child_probe_mat = np.stack(
            [tr[cc.codes] for tr, cc in zip(c_to_p, child_cols)], axis=1
        )
        child_probe = keyops.pack_codes(
            child_probe_mat, parent_radices, null_is_invalid=True
        )
        self.child_is_orphan = parent_groups.find(child_probe) == -1
        self.orphan_rows = np.flatnonzero(self.child_is_orphan)

        # Fanouts: frequency of each row's own key within its own table.
        self.parent_fanout = keyops.key_frequencies(
            keyops.pack_codes(
                np.stack([c.codes for c in parent_cols], axis=1),
                parent_radices,
                null_is_invalid=False,
            )
        )
        self.parent_fanout[parent_own == -1] = 1
        self.child_fanout = keyops.key_frequencies(self.child_packed)
        child_own_invalid = keyops.pack_codes(
            np.stack([c.codes for c in child_cols], axis=1),
            radices,
            null_is_invalid=True,
        )
        self.child_fanout[child_own_invalid == -1] = 1

    # ------------------------------------------------------------------
    def match_sums(self, child_values: np.ndarray) -> np.ndarray:
        """For each parent row, sum ``child_values`` over its matching child rows.

        ``child_values`` is indexed by child row id; misses yield 0.0.
        """
        group_sums = self.child_groups.group_sums(child_values)
        return keyops.probe_sums(self.child_groups, group_sums, self.parent_group_idx)

    def match_counts(self) -> np.ndarray:
        """Number of matching child rows per parent row."""
        sizes = self.child_groups.group_sizes().astype(np.float64)
        return keyops.probe_sums(self.child_groups, sizes, self.parent_group_idx)

    def fanout_of(self, table_name: str) -> np.ndarray:
        """Per-row fanout of ``table_name``'s side of this edge."""
        if table_name == self.edge.parent:
            return self.parent_fanout
        if table_name == self.edge.child:
            return self.child_fanout
        raise ValueError(f"{table_name!r} is not an endpoint of {self.edge.name}")
