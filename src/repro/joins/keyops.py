"""Vectorized composite-key operations shared by the join machinery.

Join keys are tuples of dictionary codes. We *pack* a ``(n, k)`` code matrix
into a single ``int64`` per row (mixed-radix, a bijection over code tuples),
then group and probe packed keys with sort/searchsorted. Every consumer of
edges — the join-count DP, the uniform sampler, the exact executor, and IBJS
— goes through these helpers, so their join semantics agree by construction.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import DataError
from repro.relational.column import NULL_CODE, Column


def translation_array(src: Column, dst: Column) -> np.ndarray:
    """Map ``src`` codes to ``dst`` codes by value.

    Index ``c`` holds the ``dst`` code of ``src.dictionary[c - 1]``, ``-1``
    when the value is absent from ``dst``. ``NULL_CODE`` maps to itself.
    """
    arr = np.full(src.domain_size, -1, dtype=np.int64)
    arr[NULL_CODE] = NULL_CODE
    if src.n_distinct == 0:
        return arr
    if dst.n_distinct == 0:
        return arr
    if src.dictionary.dtype.kind != dst.dictionary.dtype.kind:
        raise DataError(
            f"cannot translate {src.name!r} ({src.dictionary.dtype}) to "
            f"{dst.name!r} ({dst.dictionary.dtype}): join key dtypes differ"
        )
    idx = np.searchsorted(dst.dictionary, src.dictionary)
    clipped = np.minimum(idx, dst.n_distinct - 1)
    found = dst.dictionary[clipped] == src.dictionary
    arr[1:] = np.where(found, clipped + 1, -1)
    return arr


def pack_codes(
    mat: np.ndarray, radices: Sequence[int], null_is_invalid: bool
) -> np.ndarray:
    """Pack a ``(n, k)`` code matrix into one ``int64`` key per row.

    Components equal to ``-1`` (untranslatable) always yield ``-1``. When
    ``null_is_invalid`` is set, components equal to ``NULL_CODE`` also yield
    ``-1`` — use this on the *probe* side, where a NULL key joins nothing.
    On the *build* side NULL packs normally so NULL-keyed rows form their own
    (never-probed) groups.
    """
    if mat.ndim != 2 or mat.shape[1] != len(radices):
        raise DataError("pack_codes: shape/radix mismatch")
    out = np.zeros(mat.shape[0], dtype=np.int64)
    bad = np.zeros(mat.shape[0], dtype=bool)
    for j, radix in enumerate(radices):
        col = mat[:, j]
        bad |= col < 0
        if null_is_invalid:
            bad |= col == NULL_CODE
        out = out * np.int64(radix) + np.maximum(col, 0)
    out[bad] = -1
    return out


class GroupedRows:
    """Rows grouped by packed key: a CSR layout over a sorted permutation.

    ``row_ids`` lists all rows sorted by key; group ``g`` occupies
    ``row_ids[offsets[g]:offsets[g + 1]]`` and has key ``unique_keys[g]``.
    """

    __slots__ = ("unique_keys", "offsets", "row_ids")

    def __init__(self, packed: np.ndarray):
        order = np.argsort(packed, kind="stable")
        sorted_keys = packed[order]
        if len(order):
            boundaries = np.empty(len(order), dtype=bool)
            boundaries[0] = True
            boundaries[1:] = sorted_keys[1:] != sorted_keys[:-1]
            starts = np.flatnonzero(boundaries)
            self.unique_keys = sorted_keys[starts]
            self.offsets = np.append(starts, len(order))
        else:
            self.unique_keys = np.empty(0, dtype=np.int64)
            self.offsets = np.zeros(1, dtype=np.int64)
        self.row_ids = order

    @property
    def n_groups(self) -> int:
        return int(len(self.unique_keys))

    def group_sizes(self) -> np.ndarray:
        """Number of rows per group."""
        return np.diff(self.offsets)

    def group_sums(self, per_row_values: np.ndarray) -> np.ndarray:
        """Sum ``per_row_values`` within each group (values indexed by row id)."""
        if self.n_groups == 0:
            return np.empty(0, dtype=np.float64)
        gathered = per_row_values[self.row_ids].astype(np.float64)
        return np.add.reduceat(gathered, self.offsets[:-1])

    def find(self, query_keys: np.ndarray) -> np.ndarray:
        """Group index for each query key, ``-1`` when absent or key is ``-1``."""
        if self.n_groups == 0:
            return np.full(len(query_keys), -1, dtype=np.int64)
        idx = np.searchsorted(self.unique_keys, query_keys)
        clipped = np.minimum(idx, self.n_groups - 1)
        hit = (self.unique_keys[clipped] == query_keys) & (query_keys != -1)
        return np.where(hit, clipped, -1)

    def rows_of_group(self, group: int) -> np.ndarray:
        """Row ids of one group."""
        return self.row_ids[self.offsets[group] : self.offsets[group + 1]]


def key_frequencies(packed: np.ndarray) -> np.ndarray:
    """Per-row frequency of each row's own packed key within the array.

    Rows whose key packs to ``-1`` (shouldn't happen on the build side) and
    NULL-containing keys get whatever their group size is; callers decide how
    to treat NULLs (the sampler overrides NULL-key fanouts to 1).
    """
    groups = GroupedRows(packed)
    sizes = groups.group_sizes()
    out = np.empty(len(packed), dtype=np.int64)
    out[groups.row_ids] = np.repeat(sizes, sizes)
    return out


def probe_sums(
    groups: GroupedRows, group_values: np.ndarray, probe_groups: np.ndarray
) -> np.ndarray:
    """Gather a per-group statistic for probe keys (``0.0`` for misses)."""
    out = np.zeros(len(probe_groups), dtype=np.float64)
    hit = probe_groups >= 0
    out[hit] = group_values[probe_groups[hit]]
    return out
