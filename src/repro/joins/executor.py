"""Exact cardinalities via Yannakakis-style message passing.

The paper evaluates estimators against true cardinalities obtained by
actually running queries. For acyclic inner-join queries with per-table
filters, the exact COUNT is computable in linear time: apply filters to each
table, then propagate per-row match-counts bottom-up over the query subtree
(semiring message passing). This module is the evaluation oracle used for
every workload, and also yields the selectivity denominators of Figure 6.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import QueryError
from repro.joins.counts import JoinCounts
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


def _filter_masks(schema: JoinSchema, query: Query) -> Dict[str, np.ndarray]:
    masks = {
        t: np.ones(schema.table(t).n_rows, dtype=np.float64) for t in query.tables
    }
    for pred in query.predicates:
        masks[pred.table] *= pred.mask(schema.table(pred.table)).astype(np.float64)
    return masks


def query_cardinality(
    schema: JoinSchema, query: Query, counts: Optional[JoinCounts] = None
) -> float:
    """Exact COUNT(*) of an inner-join query with conjunctive filters."""
    query.validate(schema)
    counts = counts if counts is not None else JoinCounts(schema)
    masks = _filter_masks(schema, query)
    in_query = set(query.tables)
    qroot = schema.query_root(query.tables)
    order = list(reversed(schema.bfs_order(root=qroot, within=query.tables)))
    weights: Dict[str, np.ndarray] = {}
    for table_name in order:
        w = masks[table_name]
        for edge in schema.child_edges(table_name):
            if edge.child not in in_query:
                continue
            ops = counts.edge_ops[edge.name]
            w = w * ops.match_sums(weights[edge.child])
        weights[table_name] = w
    return float(weights[qroot].sum())


def inner_join_count(
    schema: JoinSchema, tables, counts: Optional[JoinCounts] = None
) -> float:
    """Exact row count of the filter-less inner join over ``tables``."""
    return query_cardinality(schema, Query.make(list(tables)), counts=counts)


def query_selectivity(
    schema: JoinSchema, query: Query, counts: Optional[JoinCounts] = None
) -> float:
    """``card_actual / card_inner`` as plotted in Figure 6 (§7.1)."""
    counts = counts if counts is not None else JoinCounts(schema)
    denom = inner_join_count(schema, query.tables, counts=counts)
    if denom == 0:
        raise QueryError(
            f"join graph {query.tables} is empty; selectivity undefined"
        )
    return query_cardinality(schema, query, counts=counts) / denom
