"""Encoding layout: full-join columns -> autoregressive model tokens.

``Layout`` fixes, once per estimator, the mapping between the sampler's
column universe (:func:`repro.joins.sampler.joined_column_specs`) and the
model's token columns: per-spec vocabularies (content columns reuse their
dictionary code space; fanouts get a compact value vocabulary), and the
lossless factorization of large content domains into subcolumns (§5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.factorization import Factorizer
from repro.errors import EstimationError
from repro.joins.counts import JoinCounts
from repro.joins.sampler import ColumnSpec, SampleBatch
from repro.relational.schema import JoinSchema


class FanoutEncoder:
    """Compact vocabulary over observed fanout values (plus the neutral 1).

    Unknown values (possible after incremental data ingests) clamp to the
    nearest known value rather than failing — fanout columns only enter
    estimates through ``E[1/F]``, so nearest-value clamping is a benign
    approximation documented in DESIGN.md.
    """

    def __init__(self, observed: np.ndarray):
        values = np.unique(np.concatenate([observed.astype(np.int64), [1]]))
        self.values = values
        self.reciprocals = 1.0 / values.astype(np.float64)

    @property
    def vocab_size(self) -> int:
        return int(len(self.values))

    def encode(self, raw: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self.values, raw)
        idx = np.clip(idx, 0, len(self.values) - 1)
        lower = np.clip(idx - 1, 0, len(self.values) - 1)
        use_lower = np.abs(self.values[lower] - raw) < np.abs(self.values[idx] - raw)
        return np.where(use_lower, lower, idx)


@dataclass
class ModelColumn:
    """One token column of the autoregressive model."""

    spec: ColumnSpec
    sub_index: int
    domain: int


class Layout:
    """The estimator's fixed column layout and tokenization."""

    def __init__(
        self,
        schema: JoinSchema,
        counts: JoinCounts,
        specs: Sequence[ColumnSpec],
        factorization_bits: Optional[int],
    ):
        self.schema = schema
        self.specs = list(specs)
        self.factorization_bits = factorization_bits
        self.factorizers: Dict[str, Factorizer] = {}
        self.fanout_encoders: Dict[str, FanoutEncoder] = {}
        self.columns: List[ModelColumn] = []
        self.spec_ranges: Dict[str, Tuple[int, int]] = {}

        for spec in self.specs:
            start = len(self.columns)
            if spec.kind == "content":
                domain = schema.table(spec.table).column(spec.column).domain_size
                factorizer = Factorizer(domain, factorization_bits)
                self.factorizers[spec.name] = factorizer
                for k, sub_dom in enumerate(factorizer.sub_domains):
                    self.columns.append(ModelColumn(spec, k, sub_dom))
            elif spec.kind == "indicator":
                self.columns.append(ModelColumn(spec, 0, 2))
            elif spec.kind == "fanout":
                ops = counts.edge_ops[spec.edge_name]
                encoder = FanoutEncoder(ops.fanout_of(spec.table))
                self.fanout_encoders[spec.name] = encoder
                self.columns.append(ModelColumn(spec, 0, encoder.vocab_size))
            else:
                raise EstimationError(f"unknown spec kind {spec.kind!r}")
            self.spec_ranges[spec.name] = (start, len(self.columns))

    # ------------------------------------------------------------------
    @property
    def domains(self) -> List[int]:
        """Token vocabulary size per model column (ResMADE's input)."""
        return [c.domain for c in self.columns]

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    def spec_by_name(self, name: str) -> ColumnSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise EstimationError(f"no column spec named {name!r}")

    def encode_batch(self, batch: SampleBatch) -> np.ndarray:
        """Sampler batch -> token matrix ``(B, n_model_columns)``."""
        first = next(iter(batch.values()))
        tokens = np.empty((len(first), self.n_columns), dtype=np.int64)
        for spec in self.specs:
            start, end = self.spec_ranges[spec.name]
            raw = batch[spec.name]
            if spec.kind == "content":
                tokens[:, start:end] = self.factorizers[spec.name].encode(raw)
            elif spec.kind == "indicator":
                tokens[:, start] = raw
            else:
                tokens[:, start] = self.fanout_encoders[spec.name].encode(raw)
        return tokens

    def content_spec_name(self, table: str, column: str) -> str:
        return f"{table}.{column}"

    def indicator_spec_name(self, table: str) -> str:
        return f"__in_{table}"

    def fanout_spec_name(self, table: str, edge) -> Optional[str]:
        """Model column name downscaling ``table`` via ``edge``; None if the
        fanout is constantly 1 and was omitted from the model."""
        key = "_".join(edge.columns_of(table))
        name = f"__fanout_{table}.{key}"
        return name if name in self.spec_ranges else None
