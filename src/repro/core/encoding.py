"""Encoding layout: full-join columns -> autoregressive model tokens.

``Layout`` fixes, once per estimator, the mapping between the sampler's
column universe (:func:`repro.joins.sampler.joined_column_specs`) and the
model's token columns: per-spec vocabularies (content columns reuse their
dictionary code space; fanouts get a compact value vocabulary), and the
lossless factorization of large content domains into subcolumns (§5).

``FusedEncoder`` is the training hot path: it fuses
:meth:`FullJoinSampler.assemble` and :meth:`Layout.encode_batch` into one
gather per table by pre-tokenizing every base-table row (content chunks,
indicator, fanout codes) into a lookup table with a trailing ⊥ row, so a
sampled ``(batch, n_tables)`` row-id matrix maps straight to model tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.factorization import Factorizer
from repro.errors import EstimationError
from repro.joins.counts import JoinCounts
from repro.joins.sampler import ColumnSpec, FullJoinSampler, SampleBatch
from repro.relational.column import NULL_CODE
from repro.relational.schema import JoinSchema


class FanoutEncoder:
    """Compact vocabulary over observed fanout values (plus the neutral 1).

    Unknown values (possible after incremental data ingests) clamp to the
    nearest known value rather than failing — fanout columns only enter
    estimates through ``E[1/F]``, so nearest-value clamping is a benign
    approximation documented in DESIGN.md.
    """

    def __init__(self, observed: np.ndarray):
        values = np.unique(np.concatenate([observed.astype(np.int64), [1]]))
        self.values = values
        self.reciprocals = 1.0 / values.astype(np.float64)

    @property
    def vocab_size(self) -> int:
        return int(len(self.values))

    def encode(self, raw: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self.values, raw)
        idx = np.clip(idx, 0, len(self.values) - 1)
        lower = np.clip(idx - 1, 0, len(self.values) - 1)
        use_lower = np.abs(self.values[lower] - raw) < np.abs(self.values[idx] - raw)
        return np.where(use_lower, lower, idx)


@dataclass
class ModelColumn:
    """One token column of the autoregressive model."""

    spec: ColumnSpec
    sub_index: int
    domain: int


class Layout:
    """The estimator's fixed column layout and tokenization."""

    def __init__(
        self,
        schema: JoinSchema,
        counts: JoinCounts,
        specs: Sequence[ColumnSpec],
        factorization_bits: Optional[int],
    ):
        self.schema = schema
        self.specs = list(specs)
        self.factorization_bits = factorization_bits
        self.factorizers: Dict[str, Factorizer] = {}
        self.fanout_encoders: Dict[str, FanoutEncoder] = {}
        self.columns: List[ModelColumn] = []
        self.spec_ranges: Dict[str, Tuple[int, int]] = {}

        for spec in self.specs:
            start = len(self.columns)
            if spec.kind == "content":
                domain = schema.table(spec.table).column(spec.column).domain_size
                factorizer = Factorizer(domain, factorization_bits)
                self.factorizers[spec.name] = factorizer
                for k, sub_dom in enumerate(factorizer.sub_domains):
                    self.columns.append(ModelColumn(spec, k, sub_dom))
            elif spec.kind == "indicator":
                self.columns.append(ModelColumn(spec, 0, 2))
            elif spec.kind == "fanout":
                ops = counts.edge_ops[spec.edge_name]
                encoder = FanoutEncoder(ops.fanout_of(spec.table))
                self.fanout_encoders[spec.name] = encoder
                self.columns.append(ModelColumn(spec, 0, encoder.vocab_size))
            else:
                raise EstimationError(f"unknown spec kind {spec.kind!r}")
            self.spec_ranges[spec.name] = (start, len(self.columns))

    # ------------------------------------------------------------------
    @property
    def domains(self) -> List[int]:
        """Token vocabulary size per model column (ResMADE's input)."""
        return [c.domain for c in self.columns]

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    def spec_by_name(self, name: str) -> ColumnSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise EstimationError(f"no column spec named {name!r}")

    def encode_batch(self, batch: SampleBatch) -> np.ndarray:
        """Sampler batch -> token matrix ``(B, n_model_columns)``."""
        first = next(iter(batch.values()))
        tokens = np.empty((len(first), self.n_columns), dtype=np.int64)
        for spec in self.specs:
            start, end = self.spec_ranges[spec.name]
            raw = batch[spec.name]
            if spec.kind == "content":
                tokens[:, start:end] = self.factorizers[spec.name].encode(raw)
            elif spec.kind == "indicator":
                tokens[:, start] = raw
            else:
                tokens[:, start] = self.fanout_encoders[spec.name].encode(raw)
        return tokens

    def content_spec_name(self, table: str, column: str) -> str:
        return f"{table}.{column}"

    def indicator_spec_name(self, table: str) -> str:
        return f"__in_{table}"

    def fanout_spec_name(self, table: str, edge) -> Optional[str]:
        """Model column name downscaling ``table`` via ``edge``; None if the
        fanout is constantly 1 and was omitted from the model."""
        key = "_".join(edge.columns_of(table))
        name = f"__fanout_{table}.{key}"
        return name if name in self.spec_ranges else None


class FusedEncoder:
    """Batched row-ids -> model tokens in one gather per table.

    Precomputes, per table, the token values of all its model columns for
    every base-table row plus one trailing ⊥ row (content columns factorized
    through the layout's :class:`Factorizer`, indicators as the constant 1,
    fanouts through the :class:`FanoutEncoder`). Encoding a sampled
    ``(batch, n_tables)`` row-id matrix is then a single fancy-index lookup
    per table — no intermediate :data:`SampleBatch` dict, no per-batch
    factorization arithmetic. Output is bit-identical to
    ``layout.encode_batch(sampler.assemble(rows))``.
    """

    def __init__(self, layout: Layout, sampler: FullJoinSampler):
        if [s.name for s in layout.specs] != [s.name for s in sampler.specs]:
            raise EstimationError(
                "layout and sampler disagree on the column universe"
            )
        self.layout = layout
        self.n_tables = len(sampler.table_order)
        specs_of: Dict[str, List[ColumnSpec]] = {t: [] for t in sampler.table_order}
        for spec in layout.specs:
            specs_of[spec.table].append(spec)

        #: per table: (matrix column index, model column indices, LUT). The
        #: LUT has ``n_rows + 1`` rows; the last row tokenizes the ⊥ tuple.
        self._tables: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for tidx, tname in enumerate(sampler.table_order):
            specs = specs_of[tname]
            if not specs:
                continue
            table = layout.schema.table(tname)
            cols: List[int] = []
            blocks: List[np.ndarray] = []
            null_blocks: List[np.ndarray] = []
            for spec in specs:
                start, end = layout.spec_ranges[spec.name]
                cols.extend(range(start, end))
                if spec.kind == "content":
                    factorizer = layout.factorizers[spec.name]
                    blocks.append(factorizer.encode(table.codes(spec.column)))
                    null_blocks.append(
                        factorizer.encode(np.array([NULL_CODE], dtype=np.int64))
                    )
                elif spec.kind == "indicator":
                    blocks.append(np.ones((table.n_rows, 1), dtype=np.int64))
                    null_blocks.append(np.zeros((1, 1), dtype=np.int64))
                else:
                    encoder = layout.fanout_encoders[spec.name]
                    raw = sampler.counts.edge_ops[spec.edge_name].fanout_of(spec.table)
                    blocks.append(encoder.encode(raw).reshape(-1, 1))
                    null_blocks.append(
                        encoder.encode(np.array([1], dtype=np.int64)).reshape(1, 1)
                    )
            lut = np.vstack(
                [np.concatenate(blocks, axis=1), np.concatenate(null_blocks, axis=1)]
            )
            self._tables.append((tidx, np.array(cols, dtype=np.intp), lut))

    def encode_row_ids(self, row_matrix: np.ndarray) -> np.ndarray:
        """``(B, n_tables)`` sampled row ids -> ``(B, n_model_columns)`` tokens."""
        if row_matrix.ndim != 2 or row_matrix.shape[1] != self.n_tables:
            raise EstimationError(
                f"expected a (batch, {self.n_tables}) row-id matrix, "
                f"got shape {row_matrix.shape}"
            )
        tokens = np.empty((len(row_matrix), self.layout.n_columns), dtype=np.int64)
        for tidx, cols, lut in self._tables:
            r = row_matrix[:, tidx]
            idx = np.where(r >= 0, r, len(lut) - 1)
            tokens[:, cols] = lut[idx]
        return tokens
