"""Lossless column factorization (paper §5, Fig. 5).

A column with a large code domain is sliced into subcolumns of at most
``2^bits`` values each: the *first* subcolumn holds the highest-order bits
(matching the paper's Figure 5). Because the downstream model is
autoregressive, no information is lost — ``p(col) = p(sub_1) p(sub_2|sub_1)
...`` — hence "lossless".

Range filters on the original column translate to *progressively relaxed*
per-subcolumn intervals: while the drawn high-bit chunks sit exactly on the
filter boundary the next chunk stays constrained; once a drawn chunk moves
strictly inside the range, lower chunks become wildcards-in-range. IN filters
translate through a prefix trie over chunk tuples.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import EstimationError


class Factorizer:
    """Bijective chunking of codes ``0..domain-1`` into base-``2^bits`` digits."""

    def __init__(self, domain: int, bits: int | None):
        if domain < 1:
            raise EstimationError("factorizer domain must be >= 1")
        self.domain = int(domain)
        self.bits = bits
        max_code = self.domain - 1
        needed_bits = max(1, max_code.bit_length())
        if bits is None or needed_bits <= bits:
            self.n_sub = 1
            self.shifts = [0]
            self.sub_domains = [self.domain]
            return
        self.n_sub = math.ceil(needed_bits / bits)
        # First subcolumn = highest bits.
        self.shifts = [bits * (self.n_sub - 1 - k) for k in range(self.n_sub)]
        low_mask_domain = 2**bits
        self.sub_domains = [(max_code >> self.shifts[0]) + 1] + [
            low_mask_domain
        ] * (self.n_sub - 1)

    @property
    def is_factorized(self) -> bool:
        return self.n_sub > 1

    # ------------------------------------------------------------------
    def encode(self, codes: np.ndarray) -> np.ndarray:
        """``(B,) -> (B, n_sub)`` chunk matrix, high bits first."""
        codes = np.asarray(codes, dtype=np.int64)
        if self.n_sub == 1:
            return codes.reshape(-1, 1)
        mask = (1 << self.bits) - 1
        out = np.empty((len(codes), self.n_sub), dtype=np.int64)
        for k, shift in enumerate(self.shifts):
            out[:, k] = (codes >> shift) & (mask if k > 0 else (1 << 63) - 1)
        return out

    def decode(self, chunks: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`encode`."""
        chunks = np.asarray(chunks, dtype=np.int64)
        if self.n_sub == 1:
            return chunks[:, 0]
        out = np.zeros(len(chunks), dtype=np.int64)
        for k, shift in enumerate(self.shifts):
            out += chunks[:, k] << shift
        return out

    def chunks_of(self, code: int) -> List[int]:
        """Chunk tuple of a single code."""
        return self.encode(np.array([code]))[0].tolist()


class IntervalState:
    """Per-sample progressive translation of ``[lo, hi]`` onto subcolumns.

    Implements the paper's §5 example generalized to two-sided intervals:
    sample ``k``'s bounds for subcolumn ``j`` are tight only while all its
    higher chunks were drawn exactly on the corresponding boundary.
    """

    def __init__(self, factorizer: Factorizer, lo: int, hi: int, n_samples: int):
        if lo > hi:
            raise EstimationError("empty interval must be short-circuited earlier")
        self.factorizer = factorizer
        self.lo_chunks = factorizer.chunks_of(lo)
        self.hi_chunks = factorizer.chunks_of(hi)
        self.tight_lo = np.ones(n_samples, dtype=bool)
        self.tight_hi = np.ones(n_samples, dtype=bool)

    def bounds(self, sub: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-sample inclusive (lo, hi) code bounds for subcolumn ``sub``."""
        dom = self.factorizer.sub_domains[sub]
        lo = np.where(self.tight_lo, self.lo_chunks[sub], 0)
        hi = np.where(self.tight_hi, self.hi_chunks[sub], dom - 1)
        return lo, hi

    def observe(self, sub: int, drawn: np.ndarray, idx=None) -> None:
        """Relax bounds after drawing subcolumn ``sub``.

        ``idx`` restricts the update to a row subset (``drawn`` then holds
        one value per selected row), letting the batched engine step only
        the still-alive samples.
        """
        if idx is None:
            self.tight_lo &= drawn == self.lo_chunks[sub]
            self.tight_hi &= drawn == self.hi_chunks[sub]
        else:
            self.tight_lo[idx] &= drawn == self.lo_chunks[sub]
            self.tight_hi[idx] &= drawn == self.hi_chunks[sub]


class SetTrie:
    """Prefix trie over chunk tuples for IN filters on factorized columns.

    The trie is stored as flat arrays so progressive sampling can walk many
    samples at once: each distinct drawn prefix at level ``k`` is a dense
    *node id*, ``codes_at(node, k)`` gives the admissible chunk values under
    that node, and :meth:`advance` maps ``(node, drawn chunk)`` pairs to the
    next level's node ids with a single ``searchsorted``. ``valid(prefix,
    k)`` keeps the tuple-keyed view for tests and single-sample callers.
    """

    def __init__(self, factorizer: Factorizer, codes: np.ndarray):
        self.factorizer = factorizer
        codes = np.unique(np.asarray(codes, dtype=np.int64))
        chunks = factorizer.encode(codes)
        self.n_sub = factorizer.n_sub
        # Per level: node -> sorted admissible chunk values, the sorted
        # (node * sub_domain + chunk) transition keys (whose positions are
        # the next level's node ids), and prefix-tuple -> node for valid().
        self._node_codes: List[List[np.ndarray]] = []
        self._trans_keys: List[np.ndarray] = []
        self._prefix_nodes: List[Dict[Tuple[int, ...], int]] = [{(): 0}]
        node_of_row = np.zeros(len(codes), dtype=np.int64)
        for k in range(self.n_sub):
            dom = factorizer.sub_domains[k]
            keys, node_of_row = np.unique(
                node_of_row * dom + chunks[:, k], return_inverse=True
            )
            parents, values = keys // dom, keys % dom
            n_nodes = len(self._prefix_nodes[k])
            self._node_codes.append([values[parents == p] for p in range(n_nodes)])
            self._trans_keys.append(keys)
            children: Dict[Tuple[int, ...], int] = {}
            for prefix, node in self._prefix_nodes[k].items():
                for v in self._node_codes[k][node]:
                    child = int(np.searchsorted(keys, node * dom + v))
                    children[prefix + (int(v),)] = child
            self._prefix_nodes.append(children)

    def valid(self, prefix: Tuple[int, ...], k: int) -> np.ndarray:
        """Admissible chunk values at level ``k`` for a drawn prefix."""
        node = self._prefix_nodes[k].get(tuple(prefix))
        if node is None:
            return np.empty(0, dtype=np.int64)
        return self._node_codes[k][node]

    def codes_at(self, node: int, k: int) -> np.ndarray:
        """Admissible chunk values at level ``k`` under node ``node``."""
        return self._node_codes[k][node]

    def advance(self, nodes: np.ndarray, drawn: np.ndarray, k: int) -> np.ndarray:
        """Vectorized ``(node, drawn chunk) -> next-level node`` transition.

        Pairs without a matching trie edge (possible for samples that just
        went dead) map to node 0; callers mask those out via ``alive``.
        """
        keys = self._trans_keys[k]
        key = nodes * self.factorizer.sub_domains[k] + drawn
        idx = np.minimum(np.searchsorted(keys, key), len(keys) - 1)
        return np.where(keys[idx] == key, idx, 0)
