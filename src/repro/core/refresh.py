"""Reusable model-refresh strategies for data ingests (paper §7.6).

The paper compares three ways of keeping an estimator fresh as partitions
are appended: do nothing (``stale``), incrementally train on ~1% of the
original tuple budget (``fast``), or retrain from scratch (``retrain``).
These used to live inline in the offline Table 6 pipeline
(:mod:`repro.eval.updates`); the serving layer's background refresher
(:mod:`repro.serving.updates`) drives the same strategies against live
traffic, so they are factored here, in ``repro.core``, where both can
reuse them.

Every strategy returns a :class:`RefreshOutcome` carrying the refreshed
estimator plus the cost telemetry (wall seconds, tuples trained,
throughput) that both the Table 6 report and the serving freshness
trajectory need.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Optional

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.relational.schema import JoinSchema

#: The §7.6 strategy universe. ``stale`` is the identity strategy: it exists
#: so policies can *decide* not to refresh and report it uniformly.
REFRESH_STRATEGIES = ("stale", "fast", "retrain")

#: The paper's fast-update budget: ~1% of the original training tuples.
FAST_REFRESH_FRACTION = 0.01

#: Never train on fewer tuples than this per refresh (one reasonable batch);
#: matches the floor the offline pipeline has always used.
MIN_REFRESH_TUPLES = 512


def fast_refresh_budget(
    config: NeuroCardConfig, fraction: float = FAST_REFRESH_FRACTION
) -> int:
    """Incremental-training tuple budget for one fast refresh."""
    return max(int(config.train_tuples * fraction), MIN_REFRESH_TUPLES)


@dataclass
class RefreshOutcome:
    """One applied refresh: the (possibly new) estimator plus its cost."""

    strategy: str
    estimator: NeuroCard
    seconds: float = 0.0
    train_tuples: int = 0
    #: Incremental-training throughput of just this refresh (0 when no
    #: training happened), from the vectorized sampling pipeline.
    tuples_per_second: float = 0.0
    data_version: Optional[int] = None


def clone_estimator(estimator: NeuroCard) -> NeuroCard:
    """Deep-copy a fitted estimator, excluding its live inference engine.

    Serving threads mutate the engine's plan/region caches concurrently, and
    ``deepcopy`` iterating those dicts mid-insert would crash; everything the
    engine wraps (model, layout, |J|) is copied and a fresh engine is built
    on the copy, so the clone can train while the original keeps serving.
    """
    memo = {id(estimator.inference): None}
    clone = copy.deepcopy(estimator, memo)
    clone.inference = clone.build_inference()
    return clone


def fast_refresh(
    estimator: NeuroCard,
    snapshot: JoinSchema,
    *,
    fraction: float = FAST_REFRESH_FRACTION,
    train_tuples: Optional[int] = None,
    data_version: Optional[int] = None,
) -> RefreshOutcome:
    """The paper's fast update: incremental training on a sliver of the budget.

    Mutates ``estimator`` in place (clone first — :func:`clone_estimator` —
    when the original must keep serving) and reports the refresh cost.
    """
    budget = (
        train_tuples
        if train_tuples is not None
        else fast_refresh_budget(estimator.config, fraction)
    )
    seen_before = estimator.train_result.tuples_seen
    wall_before = estimator.train_result.wall_seconds
    start = time.perf_counter()
    estimator.update(snapshot, train_tuples=budget, data_version=data_version)
    elapsed = time.perf_counter() - start
    d_tuples = estimator.train_result.tuples_seen - seen_before
    d_wall = max(estimator.train_result.wall_seconds - wall_before, 1e-9)
    return RefreshOutcome(
        strategy="fast",
        estimator=estimator,
        seconds=elapsed,
        train_tuples=d_tuples,
        tuples_per_second=d_tuples / d_wall,
        data_version=data_version,
    )


def full_retrain(
    snapshot: JoinSchema,
    config: NeuroCardConfig,
    *,
    data_version: Optional[int] = None,
) -> RefreshOutcome:
    """Retrain from scratch on the new snapshot (the accuracy ceiling)."""
    start = time.perf_counter()
    estimator = NeuroCard(snapshot, config).fit()
    elapsed = time.perf_counter() - start
    estimator.data_version = data_version if data_version is not None else 0
    result = estimator.train_result
    return RefreshOutcome(
        strategy="retrain",
        estimator=estimator,
        seconds=elapsed,
        train_tuples=result.tuples_seen,
        tuples_per_second=result.tuples_seen / max(result.wall_seconds, 1e-9),
        data_version=data_version,
    )
