"""Streaming maximum-likelihood training loop (paper §3.2, Eq. 2-3).

Batches of uniform full-join samples stream from the sampler; each step
optionally applies wildcard-skipping masks and takes one Adam step on the
autoregressive NLL. The batch provider either returns raw column dicts
(tokenized here through the layout — the loop-path correctness oracle) or
pre-encoded token matrices from the fused vectorized pipeline
(:class:`repro.core.encoding.FusedEncoder`), in which case tokenization
already happened inside the sampler workers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.encoding import Layout
from repro.joins.sampler import SampleBatch
from repro.nn.optim import Adam
from repro.nn.resmade import ResMADE

#: What a batch provider may yield: a raw sampler column dict, or an already
#: tokenized ``(B, n_model_columns)`` matrix from the fused pipeline.
TrainBatch = Union[SampleBatch, np.ndarray]


@dataclass
class TrainResult:
    """Bookkeeping of one training run (powers the Figure 7 benches)."""

    steps: int = 0
    tuples_seen: int = 0
    wall_seconds: float = 0.0
    losses: List[float] = field(default_factory=list)

    @property
    def tuples_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.tuples_seen / self.wall_seconds

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_autoregressive(
    model: ResMADE,
    layout: Layout,
    next_batch: Callable[[], TrainBatch],
    n_tuples: int,
    batch_size: int,
    learning_rate: float = 2e-3,
    wildcard_skipping: bool = True,
    seed: int = 0,
    optimizer: Optional[Adam] = None,
) -> TrainResult:
    """Train ``model`` on ``n_tuples`` streamed tuples; returns run stats.

    ``next_batch`` may return pre-encoded token matrices (the vectorized
    fused-sampling path) or raw sampler dicts, which are tokenized here.
    Under pinned seeds both paths yield bitwise-identical loss trajectories.
    Pass an existing ``optimizer`` to continue training incrementally (the
    paper's "fast update" strategy, §7.6) with preserved Adam state.
    """
    rng = np.random.default_rng(seed)
    opt = optimizer if optimizer is not None else Adam(model.parameters(), lr=learning_rate)
    steps = max(1, n_tuples // batch_size)
    result = TrainResult()
    start = time.perf_counter()
    for _ in range(steps):
        batch = next_batch()
        tokens = batch if isinstance(batch, np.ndarray) else layout.encode_batch(batch)
        wildcard = (
            model.sample_wildcard_mask(len(tokens), rng) if wildcard_skipping else None
        )
        opt.zero_grad()
        loss = model.loss_and_backward(tokens, wildcard)
        opt.step()
        result.losses.append(loss)
        result.steps += 1
        result.tuples_seen += len(tokens)
    result.wall_seconds = time.perf_counter() - start
    return result
