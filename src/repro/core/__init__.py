"""NeuroCard core: the paper's primary contribution.

``NeuroCard`` (in :mod:`repro.core.estimator`) is the public entry point: a
single deep autoregressive density model trained on uniform samples of the
full outer join, answering cardinality queries over any connected subset of
tables via progressive sampling with schema-subsetting corrections.
"""

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.core.factorization import Factorizer
from repro.core.inference import build_engine, compiled_model, precompile_plan
from repro.core.progressive import ProgressiveSampler
from repro.core.refresh import (
    RefreshOutcome,
    clone_estimator,
    fast_refresh,
    fast_refresh_budget,
    full_retrain,
)
from repro.core.regions import Region

__all__ = [
    "NeuroCard",
    "NeuroCardConfig",
    "Factorizer",
    "ProgressiveSampler",
    "Region",
    "RefreshOutcome",
    "build_engine",
    "clone_estimator",
    "compiled_model",
    "fast_refresh",
    "fast_refresh_budget",
    "full_retrain",
    "precompile_plan",
]
