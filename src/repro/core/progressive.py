"""Progressive-sampling inference with schema subsetting (paper §6).

Given the learned autoregressive distribution over the full outer join, a
query's cardinality is |J| · E[ 1{filters} · Π_{T∈Q} 1_T / Π_{R∉Q} F_R ]
(Eq. 9). The Monte Carlo integrator walks the model's column order, and for
each *constrained* column computes the conditional probability mass of the
valid region, multiplies it into the sample weight, and draws an in-region
value to condition subsequent columns. Unconstrained columns are wildcard-
skipped via the model's MASK tokens (never sampled).

Fanout downscaling is Rao-Blackwellized: each fanout column contributes the
exact conditional expectation Σ_f p(f|·)/f to the weight, and the value used
to condition later columns is drawn from the tilted distribution
q(f) ∝ p(f|·)/f, which keeps the estimator unbiased for Π 1/F.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.core.encoding import Layout
from repro.core.factorization import IntervalState, SetTrie
from repro.core.regions import Region
from repro.errors import EstimationError, QueryError
from repro.relational.query import Query


def _draw_interval(probs, lo, hi, rng):
    """In-interval mass and a sample from the renormalized conditional."""
    n = len(probs)
    cum = np.cumsum(probs, axis=1)
    rows = np.arange(n)
    upper = cum[rows, hi]
    lower = np.where(lo > 0, cum[rows, np.maximum(lo - 1, 0)], 0.0)
    mass = np.maximum(upper - lower, 0.0)
    target = lower + rng.random(n) * mass
    drawn = (cum < target[:, None]).sum(axis=1)
    return mass, np.clip(drawn, lo, hi)


def _draw_set(probs, codes, rng):
    """In-set mass and a sample among ``codes`` (shared across rows)."""
    sub = probs[:, codes]
    mass = sub.sum(axis=1)
    cums = np.cumsum(sub, axis=1)
    target = rng.random(len(probs)) * mass
    idx = (cums < target[:, None]).sum(axis=1)
    return mass, codes[np.minimum(idx, len(codes) - 1)]


def _draw_tilted(probs, tilt, rng):
    """Mass Σ p·tilt and a sample from q ∝ p·tilt (fanout downscaling)."""
    q = probs * tilt[None, :]
    mass = q.sum(axis=1)
    cums = np.cumsum(q, axis=1)
    target = rng.random(len(probs)) * mass
    idx = (cums < target[:, None]).sum(axis=1)
    return mass, np.minimum(idx, probs.shape[1] - 1)


class ProgressiveSampler:
    """Monte Carlo cardinality estimates over a trained density model.

    ``model`` only needs ``conditional(tokens, col, wildcard) -> (B, dom)``;
    tests exercise this class against an exact tabular oracle as well as the
    trained ResMADE.
    """

    def __init__(self, model, layout: Layout, full_join_size: float):
        self.model = model
        self.layout = layout
        self.full_join_size = float(full_join_size)

    # ------------------------------------------------------------------
    def regions_for_query(self, query: Query) -> Dict[str, Region]:
        """Per-content-spec valid regions (predicates on one column intersect)."""
        regions: Dict[str, Region] = {}
        for pred in query.predicates:
            name = self.layout.content_spec_name(pred.table, pred.column)
            if name not in self.layout.spec_ranges:
                raise QueryError(
                    f"column {name} was excluded from the model; cannot filter on it"
                )
            region = Region.from_predicate(
                pred.code_region(self.layout.schema.table(pred.table))
            )
            regions[name] = regions[name].intersect(region) if name in regions else region
        return regions

    def fanout_plan(self, query: Query) -> Set[str]:
        """Fanout spec names that downscale this query's omitted tables."""
        plan = set()
        for omitted, edge in self.layout.schema.fanout_edges_for_omitted(query.tables):
            name = self.layout.fanout_spec_name(omitted, edge)
            if name is not None:
                plan.add(name)
        return plan

    # ------------------------------------------------------------------
    def estimate(
        self, query: Query, n_samples: int = 512, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Estimated COUNT(*) of ``query`` (non-negative float)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        query.validate(self.layout.schema)
        selectivity = self.estimate_selectivity(query, n_samples, rng)
        return selectivity * self.full_join_size

    def estimate_selectivity(
        self, query: Query, n_samples: int, rng: np.random.Generator
    ) -> float:
        """E[1{filters} Π 1_T / Π F] under the learned full-join distribution."""
        if n_samples < 1:
            raise EstimationError("need at least one progressive sample")
        regions = self.regions_for_query(query)
        if any(r.is_empty for r in regions.values()):
            return 0.0
        constrained_indicators = {
            self.layout.indicator_spec_name(t) for t in query.tables
        }
        downscale = self.fanout_plan(query)

        n_cols = self.layout.n_columns
        tokens = np.zeros((n_samples, n_cols), dtype=np.int64)
        wildcard = np.ones((n_samples, n_cols), dtype=bool)
        weight = np.ones(n_samples, dtype=np.float64)
        alive = np.ones(n_samples, dtype=bool)

        for spec in self.layout.specs:
            start, _end = self.layout.spec_ranges[spec.name]
            if spec.kind == "content":
                region = regions.get(spec.name)
                if region is None:
                    continue
                self._process_content(
                    spec.name, region, start, tokens, wildcard, weight, alive, rng
                )
            elif spec.kind == "indicator":
                if spec.name not in constrained_indicators:
                    continue
                probs = self._conditional(tokens, wildcard, start, alive)
                self._apply(
                    tokens, wildcard, weight, alive, start,
                    probs[:, 1], np.ones(n_samples, dtype=np.int64),
                )
            else:  # fanout
                if spec.name not in downscale:
                    continue
                probs = self._conditional(tokens, wildcard, start, alive)
                tilt = self.layout.fanout_encoders[spec.name].reciprocals
                mass, drawn = _draw_tilted(probs, tilt, rng)
                self._apply(tokens, wildcard, weight, alive, start, mass, drawn)
            if not alive.any():
                return 0.0
        return float(weight.mean())

    # ------------------------------------------------------------------
    def _conditional(self, tokens, wildcard, col, alive):
        probs = self.model.conditional(tokens, col, wildcard)
        return probs

    @staticmethod
    def _apply(tokens, wildcard, weight, alive, col, mass, drawn):
        mass = np.clip(np.asarray(mass, dtype=np.float64), 0.0, None)
        weight *= np.where(alive, mass, 0.0)
        alive &= mass > 0
        tokens[:, col] = np.where(alive, drawn, 0)
        wildcard[:, col] = False

    def _process_content(
        self, name, region, start, tokens, wildcard, weight, alive, rng
    ):
        factorizer = self.layout.factorizers[name]
        n_samples = len(weight)
        if region.kind == "interval" and factorizer.is_factorized:
            state = IntervalState(factorizer, region.lo, region.hi, n_samples)
            for k in range(factorizer.n_sub):
                col = start + k
                probs = self._conditional(tokens, wildcard, col, alive)
                lo, hi = state.bounds(k)
                mass, drawn = _draw_interval(probs, lo, hi, rng)
                self._apply(tokens, wildcard, weight, alive, col, mass, drawn)
                state.observe(k, drawn)
        elif region.kind == "interval":
            col = start
            probs = self._conditional(tokens, wildcard, col, alive)
            lo = np.full(n_samples, region.lo, dtype=np.int64)
            hi = np.full(n_samples, region.hi, dtype=np.int64)
            mass, drawn = _draw_interval(probs, lo, hi, rng)
            self._apply(tokens, wildcard, weight, alive, col, mass, drawn)
        elif factorizer.is_factorized:
            trie = SetTrie(factorizer, region.to_codes())
            prefixes: list[Tuple[int, ...]] = [() for _ in range(n_samples)]
            for k in range(factorizer.n_sub):
                col = start + k
                probs = self._conditional(tokens, wildcard, col, alive)
                mass = np.zeros(n_samples, dtype=np.float64)
                drawn = np.zeros(n_samples, dtype=np.int64)
                groups: Dict[Tuple[int, ...], list] = {}
                for i in range(n_samples):
                    if alive[i]:
                        groups.setdefault(prefixes[i], []).append(i)
                for prefix, members in groups.items():
                    codes = trie.valid(prefix, k)
                    if len(codes) == 0:
                        continue
                    m, d = _draw_set(probs[members], codes, rng)
                    mass[members] = m
                    drawn[members] = d
                self._apply(tokens, wildcard, weight, alive, col, mass, drawn)
                for i in range(n_samples):
                    if alive[i]:
                        prefixes[i] = prefixes[i] + (int(drawn[i]),)
        else:
            col = start
            codes = region.to_codes()
            probs = self._conditional(tokens, wildcard, col, alive)
            mass, drawn = _draw_set(probs, codes, rng)
            self._apply(tokens, wildcard, weight, alive, col, mass, drawn)
