"""Progressive-sampling inference with schema subsetting (paper §6).

Given the learned autoregressive distribution over the full outer join, a
query's cardinality is |J| · E[ 1{filters} · Π_{T∈Q} 1_T / Π_{R∉Q} F_R ]
(Eq. 9). The Monte Carlo integrator walks the model's column order, and for
each *constrained* column computes the conditional probability mass of the
valid region, multiplies it into the sample weight, and draws an in-region
value to condition subsequent columns. Unconstrained columns are wildcard-
skipped via the model's MASK tokens (never sampled).

Fanout downscaling is Rao-Blackwellized: each fanout column contributes the
exact conditional expectation Σ_f p(f|·)/f to the weight, and the value used
to condition later columns is drawn from the tilted distribution
q(f) ∝ p(f|·)/f, which keeps the estimator unbiased for Π 1/F.

Two serving paths share the per-column programs below:

- ``estimate`` walks one query at a time — the readable reference
  implementation and the correctness oracle for the batched engine;
- ``estimate_batch`` packs Q queries into one ``(Q · n_samples, n_cols)``
  token matrix and shares a single ``model.conditional`` forward pass per
  column across every query constraining it, gathering only the still-alive
  rows of participating queries.

Both resolve queries through :meth:`ProgressiveSampler.plan`, which caches
the table-set-dependent plan parts (indicator and fanout column sets) and
per-predicate region translations across calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.encoding import Layout
from repro.core.factorization import Factorizer, IntervalState, SetTrie
from repro.core.regions import Region
from repro.errors import EstimationError, QueryError
from repro.relational.query import Query


def _draw_interval(probs, lo, hi, u):
    """In-interval mass and a sample from the renormalized conditional.

    ``u`` holds one uniform variate per row of ``probs``; callers draw them
    from the query's generator so row subsetting preserves the stream.
    """
    n = len(probs)
    cum = np.cumsum(probs, axis=1)
    rows = np.arange(n)
    upper = cum[rows, hi]
    lower = np.where(lo > 0, cum[rows, np.maximum(lo - 1, 0)], 0.0)
    mass = np.maximum(upper - lower, 0.0)
    # Compare in the probs' own dtype: a no-op in the fp64 reference path,
    # and half the comparison traffic for fp32 compiled conditionals.
    target = (lower + u * mass).astype(probs.dtype, copy=False)
    drawn = (cum < target[:, None]).sum(axis=1)
    return mass, np.clip(drawn, lo, hi)


def _draw_set(probs, codes, u):
    """In-set mass and a sample among ``codes`` (shared across rows)."""
    sub = probs[:, codes]
    mass = sub.sum(axis=1)
    cums = np.cumsum(sub, axis=1)
    target = (u * mass).astype(cums.dtype, copy=False)
    idx = (cums < target[:, None]).sum(axis=1)
    return mass, codes[np.minimum(idx, len(codes) - 1)]


def _draw_tilted(probs, tilt, u):
    """Mass Σ p·tilt and a sample from q ∝ p·tilt (fanout downscaling)."""
    q = probs * tilt[None, :]
    mass = q.sum(axis=1)
    cums = np.cumsum(q, axis=1)
    target = (u * mass).astype(cums.dtype, copy=False)
    idx = (cums < target[:, None]).sum(axis=1)
    return mass, np.minimum(idx, probs.shape[1] - 1)


@dataclass(frozen=True)
class QueryPlan:
    """A query resolved against the layout: everything inference needs.

    ``regions`` maps constrained content-spec names to their valid regions,
    ``indicators`` and ``fanouts`` are the indicator/fanout spec names this
    query constrains. Plans are immutable and safe to cache/share.
    """

    regions: Tuple[Tuple[str, Region], ...]
    indicators: FrozenSet[str]
    fanouts: FrozenSet[str]

    @property
    def is_empty(self) -> bool:
        return any(region.is_empty for _, region in self.regions)

    def region_map(self) -> Dict[str, Region]:
        return dict(self.regions)

    def cache_key(self) -> tuple:
        """Hashable canonical form of this plan.

        Two queries with the same table set and the same per-column valid
        regions produce equal keys regardless of predicate spelling
        (``x >= 3 AND x >= 5`` vs ``x >= 5``), so serving-layer result
        caches can coalesce them. Set regions are keyed by their sorted
        code bytes; intervals by their inclusive bounds.
        """
        regions = tuple(
            (name, region.kind, region.lo, region.hi,
             None if region.codes is None else region.codes.tobytes())
            for name, region in self.regions
        )
        return (regions, self.indicators, self.fanouts)


# ----------------------------------------------------------------------
# Per-column programs. One op instance handles one (query, spec) pair and
# is stepped through the spec's model columns; ``live`` index arrays let
# the batched engine run the same program on a row subset.
# ----------------------------------------------------------------------


class _IntervalOp:
    """Range filter: per-subcolumn progressively-relaxed bounds (§5)."""

    needs_rng = True

    def __init__(self, factorizer: Factorizer, region: Region, n: int):
        if factorizer.is_factorized:
            self.state: Optional[IntervalState] = IntervalState(
                factorizer, region.lo, region.hi, n
            )
            self.lo = self.hi = None
        else:
            self.state = None
            self.lo = np.full(n, region.lo, dtype=np.int64)
            self.hi = np.full(n, region.hi, dtype=np.int64)

    def draw(self, k, probs, live, u):
        lo, hi = (self.lo, self.hi) if self.state is None else self.state.bounds(k)
        return _draw_interval(probs, lo[live], hi[live], u)

    def observe(self, k, live, drawn):
        if self.state is not None:
            self.state.observe(k, drawn, idx=live)


class _SetOp:
    """IN filter: explicit code set, walked through the trie if factorized."""

    needs_rng = True

    def __init__(
        self,
        factorizer: Factorizer,
        region: Region,
        n: int,
        trie: Optional[SetTrie] = None,
    ):
        if factorizer.is_factorized:
            self.trie: Optional[SetTrie] = (
                trie if trie is not None else SetTrie(factorizer, region.to_codes())
            )
            self.nodes = np.zeros(n, dtype=np.int64)
            self.codes = None
        else:
            self.trie = None
            self.codes = region.to_codes()

    def draw(self, k, probs, live, u):
        if self.trie is None:
            return _draw_set(probs, self.codes, u)
        mass = np.zeros(len(probs), dtype=np.float64)
        drawn = np.zeros(len(probs), dtype=np.int64)
        nodes = self.nodes[live]
        for node in np.unique(nodes):
            members = np.flatnonzero(nodes == node)
            codes = self.trie.codes_at(int(node), k)
            if len(codes) == 0:
                continue
            mass[members], drawn[members] = _draw_set(probs[members], codes, u[members])
        return mass, drawn

    def observe(self, k, live, drawn):
        if self.trie is not None:
            self.nodes[live] = self.trie.advance(self.nodes[live], drawn, k)


class _IndicatorOp:
    """Membership constraint: weight by p(in-table), pin the token to 1."""

    needs_rng = False

    def draw(self, k, probs, live, u):
        return probs[:, 1], np.ones(len(probs), dtype=np.int64)

    def observe(self, k, live, drawn):
        pass


class _FanoutOp:
    """Rao-Blackwellized 1/F downscaling for one omitted-table fanout."""

    needs_rng = True

    def __init__(self, reciprocals: np.ndarray):
        self.reciprocals = reciprocals

    def draw(self, k, probs, live, u):
        return _draw_tilted(probs, self.reciprocals, u)

    def observe(self, k, live, drawn):
        pass


def _content_op(
    factorizer: Factorizer, region: Region, n: int, trie: Optional[SetTrie] = None
):
    if region.kind == "interval":
        return _IntervalOp(factorizer, region, n)
    return _SetOp(factorizer, region, n, trie=trie)


class ProgressiveSampler:
    """Monte Carlo cardinality estimates over a trained density model.

    ``model`` only needs ``conditional(tokens, col, wildcard) -> (B, dom)``;
    tests exercise this class against an exact tabular oracle as well as the
    trained ResMADE.
    """

    #: Bound on cached per-predicate region translations before reset.
    REGION_CACHE_LIMIT = 4096

    def __init__(self, model, layout: Layout, full_join_size: float):
        self.model = model
        self.layout = layout
        self.full_join_size = float(full_join_size)
        # Resolve the per-column conditional once: compiled models and
        # ResMADE expose the sliced ``column_conditional`` fast path, duck-
        # typed oracles fall back to the full ``conditional``.
        self._column_conditional = (
            getattr(model, "column_conditional", None) or model.conditional
        )
        self._shape_cache: Dict[FrozenSet[str], Tuple[FrozenSet[str], FrozenSet[str]]] = {}
        self._region_cache: Dict[tuple, Region] = {}
        self._trie_cache: Dict[tuple, SetTrie] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # Variance-adaptive bookkeeping: per-batch diagnostics of the most
        # recent adaptive run plus cumulative counters (see
        # :meth:`estimate_batch` and :meth:`adaptive_stats`).
        self.last_adaptive: Optional[Dict[str, np.ndarray]] = None
        self._adaptive_batches = 0
        self._adaptive_queries = 0
        self._adaptive_escalated = 0
        self._adaptive_samples_saved = 0

    # A sampler wraps an already-built model, so it is registrable at every
    # serving depth (ModelRegistry checks ``is_fitted``/``size_bytes``).
    @property
    def is_fitted(self) -> bool:
        return bool(getattr(self.model, "is_fitted", True))

    @property
    def size_bytes(self) -> int:
        return int(getattr(self.model, "size_bytes", 0) or 0)

    # ------------------------------------------------------------------
    # Query planning
    # ------------------------------------------------------------------
    def regions_for_query(self, query: Query) -> Dict[str, Region]:
        """Per-content-spec valid regions (predicates on one column intersect)."""
        regions: Dict[str, Region] = {}
        for pred in query.predicates:
            name = self.layout.content_spec_name(pred.table, pred.column)
            if name not in self.layout.spec_ranges:
                raise QueryError(
                    f"column {name} was excluded from the model; cannot filter on it"
                )
            region = self._predicate_region(pred)
            regions[name] = regions[name].intersect(region) if name in regions else region
        return regions

    def fanout_plan(self, query: Query) -> set:
        """Fanout spec names that downscale this query's omitted tables."""
        plan = set()
        for omitted, edge in self.layout.schema.fanout_edges_for_omitted(query.tables):
            name = self.layout.fanout_spec_name(omitted, edge)
            if name is not None:
                plan.add(name)
        return plan

    def _predicate_region(self, pred) -> Region:
        key = self._predicate_key(pred)
        if key is not None and key in self._region_cache:
            return self._region_cache[key]
        region = Region.from_predicate(
            pred.code_region(self.layout.schema.table(pred.table))
        )
        if key is not None:
            if len(self._region_cache) >= self.REGION_CACHE_LIMIT:
                self._region_cache.clear()
            self._region_cache[key] = region
        return region

    @staticmethod
    def _predicate_key(pred) -> Optional[tuple]:
        value = pred.value
        if isinstance(value, (list, set, frozenset)):
            value = tuple(value)
        key = (pred.table, pred.column, pred.op, value)
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def _content_op_for(self, name: str, region: Region, n: int):
        """Column program for one content spec; set tries are cached.

        Trie construction walks the IN codes once per level, so repeated
        query shapes (same spec, same code set) reuse one immutable trie —
        the per-call state (drawn node ids) lives in the op, not the trie.
        """
        factorizer = self.layout.factorizers[name]
        trie = None
        if region.kind != "interval" and factorizer.is_factorized:
            codes = region.to_codes()
            key = (name, codes.tobytes())
            trie = self._trie_cache.get(key)
            if trie is None:
                if len(self._trie_cache) >= self.REGION_CACHE_LIMIT:
                    self._trie_cache.clear()
                trie = SetTrie(factorizer, codes)
                self._trie_cache[key] = trie
        return _content_op(factorizer, region, n, trie=trie)

    def plan(self, query: Query) -> QueryPlan:
        """Resolve ``query`` into a :class:`QueryPlan`, using the caches.

        The indicator/fanout sets depend only on the query's table subset
        and are cached per table set; per-predicate region translations are
        cached by (table, column, op, value).
        """
        tables_key = frozenset(query.tables)
        shape = self._shape_cache.get(tables_key)
        if shape is None:
            self.plan_cache_misses += 1
            indicators = frozenset(
                self.layout.indicator_spec_name(t) for t in query.tables
            )
            fanouts = frozenset(self.fanout_plan(query))
            shape = (indicators, fanouts)
            self._shape_cache[tables_key] = shape
        else:
            self.plan_cache_hits += 1
        regions = self.regions_for_query(query)
        return QueryPlan(
            regions=tuple(sorted(regions.items())),
            indicators=shape[0],
            fanouts=shape[1],
        )

    # ------------------------------------------------------------------
    # Sequential path (the batched engine's correctness oracle)
    # ------------------------------------------------------------------
    def estimate(
        self, query: Query, n_samples: int = 512, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Estimated COUNT(*) of ``query`` (non-negative float)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        query.validate(self.layout.schema)
        selectivity = self.estimate_selectivity(query, n_samples, rng)
        return selectivity * self.full_join_size

    def estimate_selectivity(
        self, query: Query, n_samples: int, rng: np.random.Generator
    ) -> float:
        """E[1{filters} Π 1_T / Π F] under the learned full-join distribution."""
        if n_samples < 1:
            raise EstimationError("need at least one progressive sample")
        plan = self.plan(query)
        if plan.is_empty:
            return 0.0
        regions = plan.region_map()

        n_cols = self.layout.n_columns
        tokens = np.zeros((n_samples, n_cols), dtype=np.int64)
        wildcard = np.ones((n_samples, n_cols), dtype=bool)
        weight = np.ones(n_samples, dtype=np.float64)
        alive = np.ones(n_samples, dtype=bool)
        all_rows = np.arange(n_samples)

        for spec in self.layout.specs:
            start, _end = self.layout.spec_ranges[spec.name]
            if spec.kind == "content":
                region = regions.get(spec.name)
                if region is None:
                    continue
                op = self._content_op_for(spec.name, region, n_samples)
                n_sub = self.layout.factorizers[spec.name].n_sub
            elif spec.kind == "indicator":
                if spec.name not in plan.indicators:
                    continue
                op, n_sub = _IndicatorOp(), 1
            else:  # fanout
                if spec.name not in plan.fanouts:
                    continue
                op, n_sub = _FanoutOp(
                    self.layout.fanout_encoders[spec.name].reciprocals
                ), 1
            for k in range(n_sub):
                col = start + k
                probs = self.model.conditional(tokens, col, wildcard)
                u = rng.random(n_samples) if op.needs_rng else None
                mass, drawn = op.draw(k, probs, all_rows, u)
                self._apply(tokens, wildcard, weight, alive, col, mass, drawn)
                op.observe(k, all_rows, drawn)
            if not alive.any():
                return 0.0
        return float(weight.mean())

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------
    def estimate_batch(
        self,
        queries: Sequence[Query],
        n_samples: int = 512,
        rng: Optional[np.random.Generator] = None,
        rngs: Optional[Sequence[np.random.Generator]] = None,
        max_rel_var: Optional[float] = None,
        min_samples: Optional[int] = None,
    ) -> np.ndarray:
        """Estimated COUNT(*) for many queries in one packed pass.

        All queries share one ``(Q · n_samples, n_cols)`` token matrix and a
        single model forward pass per constrained column; estimates match a
        loop over :meth:`estimate` (given the same per-query generators in
        ``rngs``) because every query keeps its own uniform-variate stream.

        ``rngs`` pins one generator per query (used by the equivalence
        tests); by default independent streams are spawned from ``rng``.

        ``max_rel_var`` switches on **variance-adaptive sampling**: every
        query first runs a probe walk of ``min_samples`` rows (default
        ``max(16, n_samples // 8)``) on a spawned side-stream, and only the
        queries whose estimator's relative standard error —
        ``sqrt(Var(w)/k) / mean(w)`` over the probe weights ``w`` — exceeds
        the bound are escalated to a full ``n_samples`` walk. Converged
        queries stop consuming batch slots after the probe, and escalated
        queries run on their *untouched* per-query generators, so their
        results equal a fixed ``n_samples`` run exactly. Per-batch
        diagnostics land in :attr:`last_adaptive`; cumulative counters in
        :meth:`adaptive_stats`.
        """
        queries = list(queries)
        if not queries:
            return np.zeros(0, dtype=np.float64)
        if n_samples < 1:
            raise EstimationError("need at least one progressive sample")
        if rngs is None:
            root = rng if rng is not None else np.random.default_rng(0)
            rngs = root.spawn(len(queries))
        elif len(rngs) != len(queries):
            raise EstimationError("need exactly one rng per query")
        plans = []
        for query in queries:
            query.validate(self.layout.schema)
            plans.append(self.plan(query))
        if max_rel_var is not None:
            selectivity = self._adaptive_batch(
                plans, n_samples, rngs, float(max_rel_var), min_samples
            )
        else:
            # Fixed runs clear the diagnostics: last_adaptive always
            # describes the most recent batch, never a stale adaptive one.
            self.last_adaptive = None
            selectivity = self._run_batch_weights(plans, n_samples, rngs).mean(axis=1)
        return selectivity * self.full_join_size

    def _adaptive_batch(
        self,
        plans: Sequence["QueryPlan"],
        n_samples: int,
        rngs: Sequence[np.random.Generator],
        max_rel_var: float,
        min_samples: Optional[int],
    ) -> np.ndarray:
        """Probe-then-escalate executor (see :meth:`estimate_batch`)."""
        if max_rel_var < 0:
            raise EstimationError("max_rel_var must be >= 0")
        n_probe = min_samples if min_samples is not None else max(16, n_samples // 8)
        if n_probe < 2:
            raise EstimationError("adaptive sampling needs min_samples >= 2")
        n_probe = min(int(n_probe), n_samples)
        # The probe consumes a spawned side-stream so each query's own
        # generator stays pristine: an escalated query replays the exact
        # walk a fixed n_samples run would, making escalated results
        # bitwise-reproducible against the non-adaptive path.
        probe_rngs = [r.spawn(1)[0] for r in rngs]
        w = self._run_batch_weights(plans, n_probe, probe_rngs)
        mean = w.mean(axis=1)
        # Sample variance of the per-row weights -> standard error of the
        # probe-mean estimator. All-zero weights (empty or fully pruned
        # queries) have zero variance and converge immediately.
        se = np.sqrt(w.var(axis=1, ddof=1) / n_probe)
        rel_se = np.divide(
            se, mean, out=np.zeros_like(mean), where=mean > 0.0
        )
        escalate = (rel_se > max_rel_var) & (n_probe < n_samples)
        estimates = mean
        if escalate.any():
            idx = np.flatnonzero(escalate)
            full = self._run_batch_weights(
                [plans[i] for i in idx], n_samples, [rngs[i] for i in idx]
            ).mean(axis=1)
            estimates = mean.copy()
            estimates[idx] = full
        n_effective = np.where(escalate, n_probe + n_samples, n_probe)
        self.last_adaptive = {
            "probe_samples": int(n_probe),
            "max_samples": int(n_samples),
            "rel_se": rel_se,
            "escalated": escalate,
            "n_effective": n_effective,
        }
        self._adaptive_batches += 1
        self._adaptive_queries += len(plans)
        self._adaptive_escalated += int(escalate.sum())
        self._adaptive_samples_saved += int(n_samples * len(plans) - n_effective.sum())
        return estimates

    def adaptive_stats(self) -> Dict[str, int]:
        """Cumulative variance-adaptive counters (all zero when unused).

        ``samples_saved`` compares against every query running a fixed
        ``n_samples`` walk — escalated queries *cost* an extra probe, so
        the counter can go negative on workloads that never converge.
        """
        return {
            "adaptive_batches": self._adaptive_batches,
            "adaptive_queries": self._adaptive_queries,
            "adaptive_escalated": self._adaptive_escalated,
            "adaptive_samples_saved": self._adaptive_samples_saved,
        }

    def _run_batch_weights(
        self,
        plans: Sequence[QueryPlan],
        n: int,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Per-row selectivity weights, ``(n_queries, n)``; row means are the
        per-plan selectivity estimates. Queries are rows ``qi*n:(qi+1)*n``."""
        n_queries = len(plans)
        n_cols = self.layout.n_columns
        tokens = np.zeros((n_queries * n, n_cols), dtype=np.int64)
        wildcard = np.ones((n_queries * n, n_cols), dtype=bool)
        weight = np.ones(n_queries * n, dtype=np.float64)
        alive = np.ones(n_queries * n, dtype=bool)
        slices = [slice(qi * n, (qi + 1) * n) for qi in range(n_queries)]
        regions = [plan.region_map() for plan in plans]

        active: List[int] = []
        for qi, plan in enumerate(plans):
            if plan.is_empty:
                weight[slices[qi]] = 0.0
                alive[slices[qi]] = False
            else:
                active.append(qi)

        # Prefix group ids: rows sharing (token, wildcard) history share a
        # group, so the shared forward pass only evaluates unique prefixes.
        # Maintained incrementally — one cheap 1-D unique per column —
        # instead of re-deduplicating full token rows.
        group = np.zeros(n_queries * n, dtype=np.int64)

        for spec in self.layout.specs:
            if not active:
                break
            start, _end = self.layout.spec_ranges[spec.name]
            if spec.kind == "content":
                parts = [qi for qi in active if spec.name in regions[qi]]
                if not parts:
                    continue
                ops = {
                    qi: self._content_op_for(spec.name, regions[qi][spec.name], n)
                    for qi in parts
                }
                n_sub = self.layout.factorizers[spec.name].n_sub
            elif spec.kind == "indicator":
                parts = [qi for qi in active if spec.name in plans[qi].indicators]
                if not parts:
                    continue
                ops = {qi: _IndicatorOp() for qi in parts}
                n_sub = 1
            else:  # fanout
                parts = [qi for qi in active if spec.name in plans[qi].fanouts]
                if not parts:
                    continue
                tilt = self.layout.fanout_encoders[spec.name].reciprocals
                ops = {qi: _FanoutOp(tilt) for qi in parts}
                n_sub = 1
            for k in range(n_sub):
                col = start + k
                self._batch_column(
                    col, k, parts, ops, slices,
                    tokens, wildcard, weight, alive, rngs, group,
                )
                # Fold the new column into the prefix groups (wildcard rows
                # of non-participating queries share one sentinel value).
                dom = self.layout.domains[col] + 1
                key = group * (dom + 1) + np.where(
                    wildcard[:, col], dom, tokens[:, col]
                )
                _, group = np.unique(key, return_inverse=True)
            active = [qi for qi in active if alive[slices[qi]].any()]
        return weight.reshape(n_queries, n)

    def _batch_column(
        self, col, k, parts, ops, slices, tokens, wildcard, weight, alive, rngs, group
    ) -> None:
        """One shared forward pass + per-query draw/apply for model column ``col``.

        ``group`` assigns rows with identical (token, wildcard) prefixes to
        the same id — mostly-wildcard prefixes repeat heavily across queries
        and samples, so the forward pass only evaluates one representative
        row per group and fans the conditionals back out.
        """
        live_local = {qi: np.flatnonzero(alive[slices[qi]]) for qi in parts}
        rows = np.concatenate(
            [slices[qi].start + live_local[qi] for qi in parts]
        )
        conditional = self._column_conditional
        probs = None
        if len(rows):
            _, first_local, inverse = np.unique(
                group[rows], return_index=True, return_inverse=True
            )
            if len(first_local) < len(rows):
                first = rows[first_local]
                probs = conditional(tokens[first], col, wildcard[first])[inverse]
            else:
                probs = conditional(tokens[rows], col, wildcard[rows])
        offset = 0
        for qi in parts:
            sl, live = slices[qi], live_local[qi]
            op = ops[qi]
            # Full-length uniform draw keeps the query's stream identical to
            # the sequential path regardless of how many rows are alive.
            u = rngs[qi].random(sl.stop - sl.start) if op.needs_rng else None
            if len(live) == 0:
                continue
            p = probs[offset : offset + len(live)]
            offset += len(live)
            mass_live, drawn_live = op.draw(
                k, p, live, u[live] if u is not None else None
            )
            mass = np.zeros(sl.stop - sl.start, dtype=np.float64)
            drawn = np.zeros(sl.stop - sl.start, dtype=np.int64)
            mass[live], drawn[live] = mass_live, drawn_live
            self._apply(
                tokens[sl], wildcard[sl], weight[sl], alive[sl], col, mass, drawn
            )
            op.observe(k, live, drawn_live)

    # ------------------------------------------------------------------
    @staticmethod
    def _apply(tokens, wildcard, weight, alive, col, mass, drawn):
        mass = np.clip(np.asarray(mass, dtype=np.float64), 0.0, None)
        weight *= np.where(alive, mass, 0.0)
        alive &= mass > 0
        tokens[:, col] = np.where(alive, drawn, 0)
        wildcard[:, col] = False
