"""NeuroCard: the public estimator API.

Usage::

    schema = JoinSchema(...)                 # tree of base tables
    card = NeuroCard(schema).fit()           # counts -> sampler -> train
    card.estimate(Query.make(["title", "cast_info"],
                             [Predicate("title", "production_year", ">=", 2000)]))

One fitted estimator answers queries over *any* connected subset of tables
with arbitrary =, range and IN filters (§2.1). ``update`` implements the
paper's incremental-training strategy for data ingests (§7.6).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.core.config import NeuroCardConfig
from repro.core.encoding import FusedEncoder, Layout
from repro.core.inference import (
    INFERENCE_MODES,
    build_engine,
    compiled_model,
    compiled_size_bytes,
    invalidate_compiled,
    precompile_plan,
)
from repro.core.progressive import ProgressiveSampler
from repro.core.training import TrainResult, train_autoregressive
from repro.errors import EstimationError, SchemaError
from repro.joins.counts import JoinCounts
from repro.joins.sampler import FullJoinSampler, ThreadedSampler, joined_column_specs
from repro.nn.optim import Adam
from repro.nn.resmade import ResMADE
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


def _throttled_batches(get_batch, duty: float):
    """Wrap a batch source so training runs at a ``duty`` cycle (0 < duty < 1).

    Before each fetch, sleeps proportionally to the time the training thread
    was busy since the previous fetch (one gradient step + sampling), so the
    trainer holds the GIL for roughly ``duty`` of its wall time and
    concurrent serving threads keep the rest. Pure pacing: with a
    single-threaded sampler the batch sequence, and therefore the trained
    weights, are bitwise those of an unthrottled run — only wall time
    stretches (by ~1/duty). A multi-worker ``ThreadedSampler`` interleaves
    producer batches timing-dependently either way, so there pacing changes
    the (identically distributed) batch order like any other scheduling
    noise would.
    """
    last = [time.perf_counter()]

    def wrapped():
        busy = time.perf_counter() - last[0]
        delay = busy * (1.0 - duty) / duty
        if delay > 0:
            time.sleep(min(delay, 0.25))  # cap one-off stalls (setup, GC)
        batch = get_batch()
        last[0] = time.perf_counter()
        return batch

    return wrapped


class NeuroCard:
    """A single learned cardinality estimator for all tables of a schema."""

    def __init__(self, schema: JoinSchema, config: Optional[NeuroCardConfig] = None):
        self.schema = schema
        self.config = config if config is not None else NeuroCardConfig()
        self.config.validate()
        self.counts: Optional[JoinCounts] = None
        self.sampler: Optional[FullJoinSampler] = None
        self.layout: Optional[Layout] = None
        self.model: Optional[ResMADE] = None
        self.inference: Optional[ProgressiveSampler] = None
        self.train_result: Optional[TrainResult] = None
        self.prepare_seconds = 0.0
        self._optimizer: Optional[Adam] = None
        self._rng = np.random.default_rng(self.config.seed + 1)
        self._compile_mode = self.config.compiled_inference
        #: Monotonic id of the data snapshot this estimator was last trained
        #: on. 0 is the fit() snapshot; the streaming-ingest layer stamps
        #: its own versions through :meth:`update` so freshness is
        #: observable (and persisted — see ``core.persistence``).
        self.data_version = 0

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self.inference is not None

    def fit(
        self, train_tuples: Optional[int] = None, compile: Optional[object] = None
    ) -> "NeuroCard":
        """Build join counts, train the AR model, prepare inference.

        ``compile`` selects the serving kernels: ``True`` compiles (using
        the config's mode, defaulting to fp32), ``False`` keeps the
        reference engine, a mode string ("fp32"/"fp64"/"off") selects
        explicitly, and ``None`` defers to ``config.compiled_inference``.
        Compilation itself is lazy — kernels fold on first estimate.
        """
        cfg = self.config
        n_tuples = train_tuples if train_tuples is not None else cfg.train_tuples
        self._prepare_structures(n_tuples, compile)
        self._train(n_tuples)
        self.inference = self.build_inference()
        return self

    def prepare(self, compile: Optional[object] = None) -> "NeuroCard":
        """Build counts/sampler/layout/model/engine WITHOUT training.

        The weights stay at their seeded initialization. Two consumers
        replace them immediately afterwards: ``persistence.load_model``
        copies the artifact's weights in, and the serving worker pool's
        processes attach published shared-memory weight views via
        :meth:`attach_parameters` — both only need the deterministic
        skeleton (same schema + config => same architecture and layout),
        never a gradient step. The estimator reports ``is_fitted`` after
        this call; estimates are meaningless until real weights arrive.
        """
        self._prepare_structures(self.config.train_tuples, compile)
        self.inference = self.build_inference()
        return self

    def attach_parameters(self, values: Sequence[np.ndarray]) -> None:
        """Point the model's parameters at externally owned arrays (no copy).

        ``values`` must match ``model.parameters()`` order/shape/dtype —
        typically read-only views over a shared-memory blob published by
        the serving worker pool, so N processes share one physical copy of
        the weights. Compiled kernel state folded from the *old* values is
        dropped (the pool attaches published kernel buffers right after).
        Serving-only: training after attaching read-only views would fault
        in the optimizer's in-place update.
        """
        if self.model is None:
            raise EstimationError("call fit() or prepare() before attach_parameters()")
        params = self.model.parameters()
        if len(values) != len(params):
            raise EstimationError(
                f"parameter count mismatch: got {len(values)}, "
                f"model has {len(params)}"
            )
        for param, value in zip(params, values):
            if value.shape != param.value.shape or value.dtype != param.value.dtype:
                raise EstimationError(
                    f"parameter {param.name!r} mismatch: got "
                    f"{value.shape}/{value.dtype}, expected "
                    f"{param.value.shape}/{param.value.dtype}"
                )
        for param, value in zip(params, values):
            param.value = value
        self.invalidate_compiled()

    def _prepare_structures(self, n_tuples: int, compile: Optional[object]) -> None:
        cfg = self.config
        self._compile_mode = self._resolve_compile_mode(compile)
        start = time.perf_counter()
        self.counts = JoinCounts(self.schema)
        specs = joined_column_specs(
            self.schema, self.counts, exclude=cfg.exclude_columns
        )
        self.sampler = FullJoinSampler(self.schema, self.counts, specs=specs)
        self.layout = Layout(self.schema, self.counts, specs, cfg.factorization_bits)
        self.prepare_seconds = time.perf_counter() - start
        self.model = ResMADE(
            self.layout.domains,
            d_emb=cfg.d_emb,
            d_ff=cfg.d_ff,
            n_blocks=cfg.n_blocks,
            seed=cfg.seed,
        )
        self._optimizer = Adam(
            self.model.parameters(),
            lr=cfg.learning_rate,
            total_steps=max(n_tuples // cfg.batch_size, 1),
        )

    def _resolve_compile_mode(self, compile: Optional[object]) -> str:
        if compile is None:
            mode = self.config.compiled_inference
        elif compile is True:
            mode = self.config.compiled_inference
            mode = mode if mode != "off" else "fp32"
        elif compile is False:
            mode = "off"
        else:
            mode = str(compile)
        # Fail before training, not at the post-fit build_engine call.
        if mode not in INFERENCE_MODES:
            raise EstimationError(
                f"unknown inference mode {mode!r}; expected one of {INFERENCE_MODES}"
            )
        return mode

    def build_inference(self) -> ProgressiveSampler:
        """A fresh inference engine over the current weights (compiled per
        the estimator's mode). Used on fit/update and by the serving
        registry's hot-swap path, so stale compiled state never survives a
        weight change."""
        return build_engine(
            self.model, self.layout, self.counts.full_join_size, self._compile_mode,
            quantization=(
                self.config.quantization if self._compile_mode == "fp32" else "off"
            ),
        )

    @staticmethod
    def _check_throttle(throttle: Optional[float]) -> None:
        if throttle is not None and not (0.0 < throttle <= 1.0):
            raise EstimationError(
                f"throttle must be in (0, 1] (duty cycle); got {throttle!r}"
            )

    def _train(self, n_tuples: int, throttle: Optional[float] = None) -> None:
        cfg = self.config
        self._check_throttle(throttle)
        if self._optimizer is not None and self._optimizer.t > 0:
            # Incremental update: re-anchor the LR schedule so the extra
            # steps get a fresh warmup+decay segment instead of sitting at
            # the floor of the (already exhausted) original cosine.
            self._optimizer.extend_schedule(max(n_tuples // cfg.batch_size, 1))
        # Fused sampling+tokenization: batches arrive as ready token
        # matrices, drawn and encoded in one vectorized pass (and, on the
        # threaded path, produced off the training thread). Rebuilt per
        # train call because updates swap in new snapshot tables.
        fused = FusedEncoder(self.layout, self.sampler)

        def paced(get_batch):
            if throttle is None or throttle >= 1.0:
                return get_batch
            return _throttled_batches(get_batch, throttle)

        if cfg.sampler_threads > 1:
            with ThreadedSampler(
                self.sampler, cfg.batch_size, n_threads=cfg.sampler_threads,
                seed=cfg.seed, encode=fused.encode_row_ids,
            ) as threaded:
                result = train_autoregressive(
                    self.model, self.layout, paced(threaded.get_batch),
                    n_tuples, cfg.batch_size, cfg.learning_rate,
                    cfg.wildcard_skipping, cfg.seed, optimizer=self._optimizer,
                )
        else:
            rng = np.random.default_rng(cfg.seed)
            result = train_autoregressive(
                self.model, self.layout,
                paced(lambda: fused.encode_row_ids(
                    self.sampler.sample_row_id_matrix(cfg.batch_size, rng)
                )),
                n_tuples, cfg.batch_size, cfg.learning_rate,
                cfg.wildcard_skipping, cfg.seed, optimizer=self._optimizer,
            )
        if self.train_result is None:
            self.train_result = result
        else:  # accumulate across incremental updates
            self.train_result.steps += result.steps
            self.train_result.tuples_seen += result.tuples_seen
            self.train_result.wall_seconds += result.wall_seconds
            self.train_result.losses.extend(result.losses)

    # ------------------------------------------------------------------
    def estimate(
        self, query: Query, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Estimated COUNT(*), lower-bounded by 0 (harnesses clamp to 1).

        Routed through the batched engine as a batch of one, so direct
        calls and the serving layer share a single (compiled) code path;
        ``rng`` pins the query's Monte Carlo stream exactly as a
        ``rngs=[rng]`` entry does on :meth:`estimate_batch`.
        """
        if not self.is_fitted:
            raise EstimationError("call fit() before estimate()")
        return float(
            self.inference.estimate_batch(
                [query],
                n_samples=self.config.progressive_samples,
                rngs=[rng if rng is not None else self._rng],
            )[0]
        )

    def estimate_batch(
        self,
        queries: Sequence[Query],
        rng: Optional[np.random.Generator] = None,
        n_samples: Optional[int] = None,
        rngs: Optional[Sequence[np.random.Generator]] = None,
        max_rel_var: Optional[float] = None,
        min_samples: Optional[int] = None,
    ) -> np.ndarray:
        """Estimated COUNT(*) for many queries in one packed inference pass.

        All queries share one model forward pass per constrained column (the
        batched serving path); results match looping :meth:`estimate` up to
        the per-query Monte Carlo streams. Returns one estimate per query.

        ``rngs`` pins one generator per query; with query ``i`` pinned to the
        same generator state as a sequential :meth:`estimate` call, the
        batched result is bitwise-equal to the sequential one (the
        micro-batching scheduler relies on this for deterministic serving).

        ``max_rel_var`` turns on variance-adaptive sampling: every query
        first runs a cheap probe walk, and only queries whose relative
        standard error exceeds the bound escalate to the full ``n_samples``
        walk (on their pristine pinned streams, so escalated results are
        bitwise-equal to a fixed-``n_samples`` run). ``min_samples``
        overrides the probe size.
        """
        if not self.is_fitted:
            raise EstimationError("call fit() before estimate_batch()")
        return self.inference.estimate_batch(
            queries,
            n_samples=(
                n_samples if n_samples is not None else self.config.progressive_samples
            ),
            rng=rng if rng is not None else self._rng,
            rngs=rngs,
            max_rel_var=max_rel_var,
            min_samples=min_samples,
        )

    # ------------------------------------------------------------------
    def precompile(self, queries: Optional[Sequence[Query]] = None) -> int:
        """Fold the serving kernels now (and optionally pre-warm plans).

        Compilation is otherwise lazy (first estimate pays it); serving
        layers call this on load/hot-swap so the first request after a
        swap is already on compiled kernels. With ``queries``, each one's
        resolved plan seeds the wildcard-constant cache; returns the
        number of newly seeded patterns. No-op on reference engines.
        """
        if not self.is_fitted:
            raise EstimationError("call fit() before precompile()")
        compiled = compiled_model(self.inference)
        if compiled is None:
            return 0
        compiled.compile()
        seeded = 0
        for query in queries or ():
            query.validate(self.layout.schema)
            seeded += precompile_plan(self.inference, self.inference.plan(query))
        return seeded

    def invalidate_compiled(self) -> None:
        """Drop compiled kernel state (weights changed out from under it)."""
        invalidate_compiled(self.inference)

    # ------------------------------------------------------------------
    def update(
        self,
        new_schema: JoinSchema,
        train_tuples: Optional[int] = None,
        *,
        fraction: Optional[float] = None,
        data_version: Optional[int] = None,
        throttle: Optional[float] = None,
    ) -> "NeuroCard":
        """Ingest a new data snapshot and incrementally train (§7.6).

        The new snapshot must keep every column's dictionary code space (the
        update pipeline produces partition-append snapshots whose dictionaries
        are fixed upfront); join counts, |J|, and the sampler are rebuilt,
        then the existing model takes additional gradient steps.

        The incremental budget is ``train_tuples`` when given, else
        ``fraction`` of the config's original budget (the paper's fast
        strategy uses ~1%), else no training at all (counts/sampler rebuild
        only). ``data_version`` stamps :attr:`data_version` so serving
        layers can observe which snapshot generation the weights reflect;
        omitted, it bumps by one. ``throttle`` (0 < duty <= 1) paces the
        gradient steps so a background refresh shares the GIL with serving
        threads instead of starving them; with ``sampler_threads=1`` the
        trained weights are bitwise those of an unthrottled run (a threaded
        sampler's batch interleaving is timing-dependent with or without
        pacing).
        """
        if not self.is_fitted:
            raise EstimationError("call fit() before update()")
        # Pure-argument check up front: rejecting it after the schema and
        # sampler swaps below would leave a half-updated estimator.
        self._check_throttle(throttle)
        for name, table in new_schema.tables.items():
            old = self.schema.table(name)
            for col_name in old.column_names:
                if (
                    table.column(col_name).domain_size
                    != old.column(col_name).domain_size
                ):
                    raise SchemaError(
                        f"update changed domain of {name}.{col_name}; "
                        "snapshots must share dictionaries"
                    )
        if train_tuples is None and fraction is not None:
            from repro.core.refresh import fast_refresh_budget

            train_tuples = fast_refresh_budget(self.config, fraction)
        self.schema = new_schema
        start = time.perf_counter()
        self.counts = JoinCounts(new_schema)
        # Reuse the existing sampler's specs and concrete class; streaming
        # ingests route appended fragments through the same vectorized
        # machinery (see FullJoinSampler.for_snapshot for the strict path).
        self.sampler = self.sampler.rebuilt(new_schema, self.counts)
        self.layout.schema = new_schema
        self.prepare_seconds += time.perf_counter() - start
        if train_tuples and train_tuples > 0:
            self._train(train_tuples, throttle=throttle)
        self.data_version = (
            data_version if data_version is not None else self.data_version + 1
        )
        # A fresh engine also discards compiled kernels folded from the
        # pre-update weights.
        self.inference = self.build_inference()
        return self

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Resident estimator size: model weights + compiled inference buffers.

        The compiled term is 0 until the first estimate folds the kernels
        (compilation is lazy) and deterministic afterwards, so serving
        memory budgets see a stable number per model.
        """
        if self.model is None:
            raise EstimationError("not fitted")
        return self.model.size_bytes + compiled_size_bytes(self.inference)

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 2**20

    @property
    def full_join_size(self) -> float:
        if self.counts is None:
            raise EstimationError("not fitted")
        return self.counts.full_join_size
