"""Valid-region algebra over dictionary codes.

Queries constrain each column to a region ``R_i`` (paper Eq. 4): either a
contiguous code interval (comparison operators, since dictionaries are
order-preserving) or an explicit code set (IN). Conjunctions of predicates on
one column intersect their regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import EstimationError


@dataclass(frozen=True)
class Region:
    """Either ``interval`` with inclusive ``(lo, hi)`` or ``set`` with codes."""

    kind: str
    lo: int = 0
    hi: int = -1
    codes: Optional[np.ndarray] = None

    @staticmethod
    def interval(lo: int, hi: int) -> "Region":
        return Region(kind="interval", lo=int(lo), hi=int(hi))

    @staticmethod
    def of_codes(codes: np.ndarray) -> "Region":
        return Region(kind="set", codes=np.unique(np.asarray(codes, dtype=np.int64)))

    @staticmethod
    def from_predicate(pred_region: Tuple[str, object]) -> "Region":
        """Build from :meth:`repro.relational.predicate.Predicate.code_region`."""
        kind, payload = pred_region
        if kind == "interval":
            lo, hi = payload
            return Region.interval(lo, hi)
        if kind == "set":
            return Region.of_codes(payload)
        raise EstimationError(f"unknown region kind {kind!r}")

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        if self.kind == "interval":
            return self.lo > self.hi
        return len(self.codes) == 0

    def to_codes(self) -> np.ndarray:
        """Materialize as an explicit sorted code array."""
        if self.kind == "set":
            return self.codes
        if self.is_empty:
            return np.empty(0, dtype=np.int64)
        return np.arange(self.lo, self.hi + 1, dtype=np.int64)

    def intersect(self, other: "Region") -> "Region":
        """Intersection; interval ∩ interval stays an interval."""
        if self.kind == "interval" and other.kind == "interval":
            return Region.interval(max(self.lo, other.lo), min(self.hi, other.hi))
        if self.kind == "set" and other.kind == "set":
            return Region.of_codes(np.intersect1d(self.codes, other.codes))
        interval = self if self.kind == "interval" else other
        codes = (self if self.kind == "set" else other).codes
        kept = codes[(codes >= interval.lo) & (codes <= interval.hi)]
        return Region.of_codes(kept)

    def contains(self, code: int) -> bool:
        if self.kind == "interval":
            return self.lo <= code <= self.hi
        return bool(np.isin(code, self.codes))
