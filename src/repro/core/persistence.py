"""Model persistence: save/load trained NeuroCard weights.

The paper reports estimator sizes of a few MB and sub-minute (re)build
times; persisting the trained weights lets a DBMS ship the estimator with a
snapshot and reload it without retraining. Only the *model parameters* and
the architecture/config metadata are serialized (``.npz``); join counts and
the sampler are cheap to rebuild from the data (seconds, §7.4) and are
reconstructed on load.

Compatibility is checked *before* any model is built or weights are
touched: the artifact records every table's column names and dictionary
domain sizes, so loading against a drifted schema fails with a
:class:`~repro.errors.PersistenceError` naming the offending column instead
of a deep shape error inside weight copying.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
import zlib
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.errors import EstimationError, PersistenceError, TrainingError
from repro.relational.schema import JoinSchema

#: v1 artifacts lack the per-column ``columns`` map; they still load, with
#: compatibility enforced by the (post-build) layout-domain check only.
#: v3 adds versioned ``snapshot`` metadata (data_version + per-table row
#: counts + training telemetry) so serving layers can judge an artifact's
#: freshness against a live snapshot without loading any weights; v1/v2
#: artifacts still load, with data_version defaulting to 0.
#: v4 adds a CRC32 ``checksum`` over the parameter arrays (verified on
#: load, so a torn or bit-flipped artifact raises PersistenceError instead
#: of loading garbage) and is written via temp-file + fsync + atomic
#: rename; earlier versions still load, without checksum verification.
_FORMAT_VERSION = 4
_SUPPORTED_VERSIONS = (1, 2, 3, 4)


def _schema_columns(schema: JoinSchema) -> dict:
    """Per-table column name -> dictionary domain size, for compat checks."""
    return {
        name: {
            col: int(table.column(col).domain_size) for col in table.column_names
        }
        for name, table in sorted(schema.tables.items())
    }


def _check_columns(schema: JoinSchema, saved: dict) -> None:
    """Raise :class:`PersistenceError` unless ``schema`` matches ``saved``."""
    current = _schema_columns(schema)
    for table, saved_cols in saved.items():
        cols = current.get(table)
        if cols is None:
            raise PersistenceError(f"schema is missing table {table!r} from the artifact")
        if list(cols) != list(saved_cols):
            raise PersistenceError(
                f"table {table!r} columns changed since the model was saved: "
                f"{list(cols)} != {list(saved_cols)}"
            )
        for col, domain in saved_cols.items():
            if cols[col] != domain:
                raise PersistenceError(
                    f"column {table}.{col} dictionary changed since the model "
                    f"was saved (domain {cols[col]} != {domain}); snapshots "
                    "must share dictionaries"
                )


def _npz_path(path: str | Path) -> Path:
    """Artifact path with the ``.npz`` suffix numpy's loader expects."""
    return Path(path) if str(path).endswith(".npz") else Path(f"{path}.npz")


def _parse_meta(data) -> dict:
    """Decode and version-check the ``__meta__`` blob of an open artifact."""
    meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
    if meta.get("format_version") not in _SUPPORTED_VERSIONS:
        raise PersistenceError(
            f"unsupported model format {meta.get('format_version')!r}"
        )
    return meta


def _params_crc(ordered_arrays) -> int:
    """CRC32 over the parameter arrays' dtype/shape headers + raw bytes.

    The zip container already checksums its compressed members, which
    catches raw bit flips in the file; this content-level CRC additionally
    catches a *valid* archive whose arrays no longer match the metadata
    (rewritten member, stale meta after partial repair) — the torn-write
    shapes an atomic rename alone cannot rule out.
    """
    crc = 0
    for key, array in ordered_arrays:
        array = np.ascontiguousarray(array)
        header = f"{key}:{array.dtype.str}:{array.shape}".encode("utf-8")
        crc = zlib.crc32(header, crc)
        crc = zlib.crc32(array.tobytes(), crc)
    return crc


def _ordered_param_keys(files) -> list:
    return sorted(
        (k for k in files if k.startswith("param::")),
        key=lambda k: int(k.split("::")[1]),
    )


def _open_artifact(path: Path):
    """``np.load`` with corrupt containers mapped to :class:`PersistenceError`.

    Missing files keep raising ``FileNotFoundError`` (absent and corrupt
    are different operator problems); truncated or otherwise unreadable
    archives raise a typed error naming the artifact.
    """
    try:
        return np.load(path)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, EOFError, KeyError, OSError) as exc:
        raise PersistenceError(
            f"artifact {path} is corrupt or unreadable: {type(exc).__name__}: {exc}"
        ) from exc


def save_model(estimator: NeuroCard, path: str | Path) -> Path:
    """Serialize a fitted estimator's weights + config to ``path`` (.npz).

    Crash-safe: the archive is written to a same-directory temp file,
    fsynced, then atomically renamed over ``path`` — a crash mid-save
    leaves either the previous artifact or none, never a torn one. The
    parameter arrays' CRC32 travels in ``__meta__`` and is verified by
    :func:`load_model`.
    """
    if not estimator.is_fitted:
        raise EstimationError("cannot save an unfitted estimator")
    path = Path(path)
    arrays = {
        f"param::{i}::{p.name}": p.value
        for i, p in enumerate(estimator.model.parameters())
    }
    config = asdict(estimator.config)
    config["exclude_columns"] = list(config["exclude_columns"])
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": config,
        "domains": estimator.layout.domains,
        "tables": sorted(estimator.schema.tables),
        "columns": _schema_columns(estimator.schema),
        "snapshot": {
            "data_version": int(estimator.data_version),
            "n_rows": {
                name: int(table.n_rows)
                for name, table in sorted(estimator.schema.tables.items())
            },
            "tuples_seen": (
                int(estimator.train_result.tuples_seen)
                if estimator.train_result is not None
                else 0
            ),
            # Serving modes travel with the artifact so a deployment can
            # inspect them without loading weights. Compiled (and quantized)
            # buffers themselves are derived state and are never persisted —
            # kernels refold from the raw parameters on load.
            "quantization": estimator.config.quantization,
        },
        "checksum": {
            "algorithm": "crc32",
            "params": _params_crc(sorted(arrays.items())),
        },
    }
    final = _npz_path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=final.parent or Path("."), prefix=f".{final.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, __meta__=np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ), **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        from repro.serving import faults  # chaos seam; no-op unless installed

        injector = faults.get_active()
        if injector is not None:
            injector.check("persistence.save")
        os.replace(tmp, final)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return final


def load_model(path: str | Path, schema: JoinSchema) -> NeuroCard:
    """Rebuild a fitted estimator from saved weights and a schema snapshot.

    The schema must be the same logical schema (same tables and column
    dictionaries) the estimator was trained on; join counts, the sampler and
    the inference layout are rebuilt from it. Incompatible schemas and
    configs are rejected with a :class:`PersistenceError` before any model
    is built or weights are read; truncated/corrupt archives and artifacts
    whose parameter CRC32 no longer matches ``__meta__`` (torn or
    bit-flipped writes) also raise :class:`PersistenceError`.
    """
    from repro.serving import faults  # chaos seam; no-op unless installed

    injector = faults.get_active()
    if injector is not None:
        injector.check("persistence.load")
    with _open_artifact(_npz_path(path)) as data:
        meta = _parse_meta(data)
        if sorted(schema.tables) != meta["tables"]:
            raise PersistenceError(
                "schema tables do not match the saved estimator: "
                f"{sorted(schema.tables)} != {meta['tables']}"
            )
        if "columns" in meta:
            _check_columns(schema, meta["columns"])
        config_dict = dict(meta["config"])
        config_dict["exclude_columns"] = tuple(config_dict["exclude_columns"])
        try:
            config = NeuroCardConfig(**config_dict)
            config.validate()
        except (TypeError, ValueError, TrainingError) as exc:
            raise PersistenceError(
                f"saved config is not compatible with this build: {exc}"
            ) from exc
        estimator = NeuroCard(schema, config)
        estimator.prepare()  # counts/layout/model skeleton, no gradient steps
        if estimator.layout.domains != meta["domains"]:
            raise PersistenceError(
                "schema dictionaries do not match the saved estimator "
                "(column domains differ)"
            )
        params = estimator.model.parameters()
        keys = _ordered_param_keys(data.files)
        if len(keys) != len(params):
            raise PersistenceError("saved parameter count mismatch")
        try:
            saved_arrays = [(key, data[key]) for key in keys]
        except (zipfile.BadZipFile, zlib.error, ValueError, OSError) as exc:
            raise PersistenceError(
                f"artifact {path} has corrupt parameter data: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        checksum = meta.get("checksum")
        if checksum is not None and checksum.get("algorithm") == "crc32":
            actual = _params_crc(sorted(saved_arrays))
            if actual != int(checksum["params"]):
                raise PersistenceError(
                    f"artifact {path} failed its checksum (stored crc32 "
                    f"{int(checksum['params'])}, computed {actual}); the "
                    "write was torn or the file was corrupted"
                )
        for (key, saved), param in zip(saved_arrays, params):
            if saved.shape != param.value.shape:
                raise PersistenceError(f"shape mismatch for {param.name}")
            param.value[...] = saved
        estimator.data_version = int(
            meta.get("snapshot", {}).get("data_version", 0)
        )
    # Compiled inference buffers are derived state: they are never written
    # to the artifact and anything folded from prepare()'s seeded
    # initialization would be stale. Drop defensively; kernels refold
    # lazily from the loaded weights on the first estimate.
    estimator.invalidate_compiled()
    return estimator


def read_snapshot_metadata(path: str | Path) -> dict:
    """The artifact's ``snapshot`` metadata without loading any weights.

    Returns ``{"data_version": int, "n_rows": {table: int}, "tuples_seen":
    int, "quantization": str}`` (all-zero/empty, quantization ``"off"``,
    for artifacts predating each field). The background refresher uses
    this to decide whether a saved model is already fresh enough for a
    live snapshot before paying a multi-second load.
    """
    with _open_artifact(_npz_path(path)) as data:
        meta = _parse_meta(data)
    snapshot = meta.get("snapshot", {})
    return {
        "data_version": int(snapshot.get("data_version", 0)),
        "n_rows": {k: int(v) for k, v in snapshot.get("n_rows", {}).items()},
        "tuples_seen": int(snapshot.get("tuples_seen", 0)),
        "quantization": str(snapshot.get("quantization", "off")),
    }
