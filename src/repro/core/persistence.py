"""Model persistence: save/load trained NeuroCard weights.

The paper reports estimator sizes of a few MB and sub-minute (re)build
times; persisting the trained weights lets a DBMS ship the estimator with a
snapshot and reload it without retraining. Only the *model parameters* and
the architecture/config metadata are serialized (``.npz``); join counts and
the sampler are cheap to rebuild from the data (seconds, §7.4) and are
reconstructed on load.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.errors import EstimationError
from repro.relational.schema import JoinSchema

_FORMAT_VERSION = 1


def save_model(estimator: NeuroCard, path: str | Path) -> Path:
    """Serialize a fitted estimator's weights + config to ``path`` (.npz)."""
    if not estimator.is_fitted:
        raise EstimationError("cannot save an unfitted estimator")
    path = Path(path)
    arrays = {
        f"param::{i}::{p.name}": p.value
        for i, p in enumerate(estimator.model.parameters())
    }
    config = asdict(estimator.config)
    config["exclude_columns"] = list(config["exclude_columns"])
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": config,
        "domains": estimator.layout.domains,
        "tables": sorted(estimator.schema.tables),
    }
    np.savez_compressed(path, __meta__=np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ), **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model(path: str | Path, schema: JoinSchema) -> NeuroCard:
    """Rebuild a fitted estimator from saved weights and a schema snapshot.

    The schema must be the same logical schema (same tables and column
    dictionaries) the estimator was trained on; join counts, the sampler and
    the inference layout are rebuilt from it.
    """
    with np.load(Path(path) if str(path).endswith(".npz") else f"{path}.npz") as data:
        meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise EstimationError(
                f"unsupported model format {meta.get('format_version')!r}"
            )
        if sorted(schema.tables) != meta["tables"]:
            raise EstimationError(
                "schema tables do not match the saved estimator: "
                f"{sorted(schema.tables)} != {meta['tables']}"
            )
        config_dict = dict(meta["config"])
        config_dict["exclude_columns"] = tuple(config_dict["exclude_columns"])
        config = NeuroCardConfig(**config_dict)
        estimator = NeuroCard(schema, config)
        estimator.fit(train_tuples=1)  # builds counts/layout/model cheaply
        if estimator.layout.domains != meta["domains"]:
            raise EstimationError(
                "schema dictionaries do not match the saved estimator "
                "(column domains differ)"
            )
        params = estimator.model.parameters()
        keys = sorted(
            (k for k in data.files if k.startswith("param::")),
            key=lambda k: int(k.split("::")[1]),
        )
        if len(keys) != len(params):
            raise EstimationError("saved parameter count mismatch")
        for key, param in zip(keys, params):
            saved = data[key]
            if saved.shape != param.value.shape:
                raise EstimationError(f"shape mismatch for {param.name}")
            param.value[...] = saved
    return estimator
