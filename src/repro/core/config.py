"""NeuroCard configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import TrainingError


@dataclass
class NeuroCardConfig:
    """All capacity/training/inference knobs of the estimator.

    Defaults mirror the paper's Base configuration (Table 5) scaled to CPU
    training: ResMADE with ``d_ff`` feed-forward width and ``d_emb``
    embeddings, 14 factorization bits, wildcard skipping on, and a few
    hundred progressive samples at inference.
    """

    d_emb: int = 16
    d_ff: int = 128
    n_blocks: int = 2
    factorization_bits: Optional[int] = 14
    batch_size: int = 1024
    train_tuples: int = 200_000
    learning_rate: float = 2e-3
    progressive_samples: int = 512
    sampler_threads: int = 4
    wildcard_skipping: bool = True
    exclude_columns: Tuple[str, ...] = field(default_factory=tuple)
    seed: int = 0
    #: Serving-side kernel compilation: "fp32" (compiled fast path, the
    #: default), "fp64" (oracle mode, bitwise-equal to the reference
    #: forward), or "off" (uncompiled reference engine).
    compiled_inference: str = "fp32"
    #: Compiled-kernel weight quantization: "off" (full fp32 kernels),
    #: "int16", or "int8". Quantized modes store the folded LUTs and GEMM
    #: weights at reduced precision with per-channel scales and accumulate
    #: in fp32; they require ``compiled_inference == "fp32"`` (the fp64
    #: oracle stays unquantized so it can serve as the drift reference).
    quantization: str = "off"

    def validate(self) -> None:
        if self.d_emb < 1 or self.d_ff < 1 or self.n_blocks < 0:
            raise TrainingError("model dimensions must be positive")
        if self.factorization_bits is not None and self.factorization_bits < 1:
            raise TrainingError("factorization_bits must be >= 1 or None")
        if self.batch_size < 1 or self.train_tuples < 1:
            raise TrainingError("training sizes must be positive")
        if self.progressive_samples < 1:
            raise TrainingError("progressive_samples must be >= 1")
        if self.sampler_threads < 1:
            raise TrainingError("sampler_threads must be >= 1")
        if self.compiled_inference not in ("off", "fp32", "fp64"):
            raise TrainingError(
                "compiled_inference must be 'off', 'fp32', or 'fp64'; "
                f"got {self.compiled_inference!r}"
            )
        if self.quantization not in ("off", "int16", "int8"):
            raise TrainingError(
                "quantization must be 'off', 'int16', or 'int8'; "
                f"got {self.quantization!r}"
            )
        if self.quantization != "off" and self.compiled_inference != "fp32":
            raise TrainingError(
                "quantized kernels require compiled_inference='fp32' "
                f"(got {self.compiled_inference!r}); the fp64 oracle and the "
                "uncompiled reference engine stay full-precision"
            )
