"""Compiled inference engine: the plan-specialized serving executor.

:class:`~repro.core.progressive.ProgressiveSampler` is the readable
reference implementation (and correctness oracle) of batched progressive
sampling — PR 1's engine, kept byte-for-byte. :class:`CompiledEngine` is
its compiled twin: the same Monte Carlo walk, re-executed with everything
that is constant per query plan hoisted out of the hot loop:

* model forwards run through :class:`~repro.nn.compiled.CompiledResMADE`
  kernels (embedding-folded LUTs, degree-sorted prefix-sliced blocks,
  sliced output heads, fp32 scratch reuse) via an incremental
  :class:`~repro.nn.compiled.FoldSession`: each finalized column is folded
  into a running pre-activation buffer exactly once per walk instead of
  being re-gathered on every later forward pass;
* per-query draw loops are vectorized per op class — all queries
  filtering a column by intervals share one cumulative-sum/draw pass over
  their concatenated rows (same for fanout tilts and indicators; IN-set
  walks keep the per-query trie state) — and the post-draw weight/token
  bookkeeping lands in one gather/scatter pass over the participating
  slices instead of one Python iteration per query.

Every per-row quantity (conditional mass, drawn token, weight update) is
computed by the same formulas on the same values as the reference loop,
so the restructure is exact: in ``"fp64"`` mode (reference forward under
the compiled executor) results are **bitwise-equal** to
``ProgressiveSampler.estimate_batch``, which the tests and the
``bench_compiled_inference`` CI gate pin. ``"fp32"`` mode swaps in the
compiled kernels for the speed (estimates within 1e-4 relative).

Modes (``NeuroCardConfig.compiled_inference``):

``"off"``
    The reference engine, unchanged.
``"fp32"``
    Compiled executor + compiled fp32 kernels — the serving fast path.
``"fp64"``
    Oracle mode: compiled executor, reference forward — bitwise-equal to
    ``"off"`` by construction; pins that the executor adds zero drift.

Plan pre-compilation (:func:`precompile_plan`) seeds the kernel's
wildcard-constant cache with every pattern a resolved
:class:`~repro.core.progressive.QueryPlan` will present, so registered
workloads pay pattern assembly before traffic arrives. Compiled state is
derived from the weights: never persisted (snapshot artifacts carry only
the raw parameters plus the configured modes), and dropped via
:func:`invalidate_compiled` whenever weights change.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.progressive import (
    ProgressiveSampler,
    QueryPlan,
    _draw_interval,
    _draw_tilted,
    _FanoutOp,
    _IndicatorOp,
    _IntervalOp,
)
from repro.errors import EstimationError
from repro.nn.compiled import CompiledResMADE, supports_compilation

#: Recognized values for ``NeuroCardConfig.compiled_inference``.
INFERENCE_MODES = ("off", "fp32", "fp64")

#: Recognized values for ``NeuroCardConfig.quantization``.
QUANTIZATION_MODES = ("off", "int16", "int8")

def _compress(key: np.ndarray) -> np.ndarray:
    """``np.unique(key, return_inverse=True)[1]`` without the sort.

    Ranks each key by value via a presence-count prefix sum, which yields
    exactly the inverse array ``np.unique`` produces (ids ordered by key
    value) in O(n + span) — the group-id maintenance of the batched walk
    is called once per model column, so this is hot. Falls back to the
    sort when the value span dwarfs the array (counting would scan more
    memory than sorting touches).
    """
    kmin = int(key.min())
    span = int(key.max()) - kmin + 1
    if span > max(4 * len(key), 1 << 15):
        return np.unique(key, return_inverse=True)[1]
    shifted = key - kmin
    rank = np.cumsum(np.bincount(shifted, minlength=span) > 0) - 1
    return rank[shifted]


def _first_and_inverse(ids: np.ndarray):
    """First-occurrence indices + inverse for already-compressed group ids.

    Equivalent to ``np.unique(ids, return_index=True, return_inverse=True)``
    (ids are dense ranks, so value order == sorted order) without sorting.
    """
    span = int(ids.max()) + 1
    rank = np.cumsum(np.bincount(ids, minlength=span) > 0) - 1
    inverse = rank[ids]
    first = np.empty(int(rank[-1]) + 1, dtype=np.int64)
    first[inverse[::-1]] = np.arange(len(ids) - 1, -1, -1)
    return first, inverse


class CompiledEngine(ProgressiveSampler):
    """Plan-specialized batched executor (see module docstring).

    The sequential :meth:`~ProgressiveSampler.estimate` path is inherited
    unchanged (it runs through the compiled model's stateless kernel);
    only the batched walk is re-executed here.
    """

    def __init__(
        self,
        model,
        layout,
        full_join_size: float,
        mode: str = "fp32",
        quantization: str = "off",
    ):
        if mode not in ("fp32", "fp64"):
            raise EstimationError(
                f"CompiledEngine mode must be 'fp32' or 'fp64', got {mode!r}"
            )
        if quantization != "off" and mode != "fp32":
            raise EstimationError(
                "quantized kernels require the fp32 compiled engine "
                f"(got mode={mode!r})"
            )
        if not isinstance(model, CompiledResMADE):
            if mode == "fp32":
                # Raises for non-ResMADE models: fp32 needs real kernels.
                model = CompiledResMADE(model, mode="fp32", quantization=quantization)
            elif supports_compilation(model):
                model = CompiledResMADE(model, mode="fp64")
            # else: duck-typed oracle model under the fp64 executor — used
            # by the tests to pin the executor against the reference loop.
        self.mode = mode
        super().__init__(model, layout, full_join_size)

    # ------------------------------------------------------------------
    def _run_batch_weights(
        self,
        plans: Sequence[QueryPlan],
        n: int,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """The reference ``_run_batch_weights`` walk with a kernel fold
        session and the vectorized column step below. Structure
        intentionally mirrors :meth:`ProgressiveSampler._run_batch_weights`
        line by line."""
        n_queries = len(plans)
        n_cols = self.layout.n_columns
        tokens = np.zeros((n_queries * n, n_cols), dtype=np.int64)
        wildcard = np.ones((n_queries * n, n_cols), dtype=bool)
        weight = np.ones(n_queries * n, dtype=np.float64)
        alive = np.ones(n_queries * n, dtype=bool)
        slices = [slice(qi * n, (qi + 1) * n) for qi in range(n_queries)]
        regions = [plan.region_map() for plan in plans]

        active: List[int] = []
        for qi, plan in enumerate(plans):
            if plan.is_empty:
                weight[slices[qi]] = 0.0
                alive[slices[qi]] = False
            else:
                active.append(qi)

        session = (
            self.model.begin_session(tokens, wildcard)
            if self.mode == "fp32" and isinstance(self.model, CompiledResMADE)
            else None
        )
        group = np.zeros(n_queries * n, dtype=np.int64)
        # Adaptive prefix dedup (fp32 only): duplicates across rows can only
        # shrink as the walk conditions on more columns, so once a column
        # sees almost no sharing the group bookkeeping is pure overhead —
        # stop probing and run the kernels on the raw live rows. The fp64
        # oracle mode keeps the reference behavior bit for bit.
        state = {"dedup": True}

        specs = self.layout.specs
        i = 0
        while i < len(specs):
            if not active:
                break
            spec = specs[i]
            if session is not None and spec.kind == "indicator":
                j = i
                while j < len(specs) and specs[j].kind == "indicator":
                    j += 1
                if j - i > 1:
                    # The first processed column after the run also has a
                    # fully deterministic prefix (indicator tokens follow
                    # membership, skipped columns stay MASK) — its head can
                    # ride the same blocks pass.
                    tail_col = None
                    for later in specs[j:]:
                        if later.kind == "content":
                            hit = any(later.name in regions[qi] for qi in active)
                        elif later.kind == "indicator":
                            hit = any(
                                later.name in plans[qi].indicators for qi in active
                            )
                        else:
                            hit = any(
                                later.name in plans[qi].fanouts for qi in active
                            )
                        if hit:
                            tail_col = self.layout.spec_ranges[later.name][0]
                            break
                    group, active = self._indicator_run(
                        specs[i:j], plans, active, slices, tokens, wildcard,
                        weight, alive, group, session, state, n, n_queries,
                        tail_col,
                    )
                    i = j
                    continue
            start, _end = self.layout.spec_ranges[spec.name]
            i += 1
            if spec.kind == "content":
                parts = [qi for qi in active if spec.name in regions[qi]]
                if not parts:
                    continue
                ops = {
                    qi: self._content_op_for(spec.name, regions[qi][spec.name], n)
                    for qi in parts
                }
                n_sub = self.layout.factorizers[spec.name].n_sub
            elif spec.kind == "indicator":
                parts = [qi for qi in active if spec.name in plans[qi].indicators]
                if not parts:
                    continue
                ops = {qi: _IndicatorOp() for qi in parts}
                n_sub = 1
            else:  # fanout
                parts = [qi for qi in active if spec.name in plans[qi].fanouts]
                if not parts:
                    continue
                tilt = self.layout.fanout_encoders[spec.name].reciprocals
                ops = {qi: _FanoutOp(tilt) for qi in parts}
                n_sub = 1
            for k in range(n_sub):
                col = start + k
                self._compiled_column(
                    col, k, parts, ops, slices,
                    tokens, wildcard, weight, alive, rngs, group, session, state,
                )
                group = self._fold_group(group, col, tokens, wildcard, session, state)
            any_alive = alive.reshape(n_queries, n).any(axis=1)
            active = [qi for qi in active if any_alive[qi]]
        return weight.reshape(n_queries, n)

    def _fold_group(self, group, col, tokens, wildcard, session, state):
        """Refine prefix-group ids with one more finalized column.

        The column's token values are rank-compressed first (usually only a
        handful of distinct values were drawn), which keeps the combined
        key span small enough for the counting relabel; ranking preserves
        value order, so the resulting ids match the reference's
        ``np.unique`` relabel exactly.
        """
        if session is not None and not state["dedup"]:
            return group
        dom = self.layout.domains[col]
        tok = _compress(np.where(wildcard[:, col], dom, tokens[:, col]))
        key = group * (int(tok.max()) + 1) + tok
        return _compress(key)

    def _indicator_run(
        self, run, plans, active, slices, tokens, wildcard, weight, alive,
        group, session, state, n, n_queries, tail_col=None,
    ):
        """Consecutive indicator columns: one blocks pass serves them all.

        Indicator draws are deterministic — a participating row's token is
        pinned to 1 (or the row is dead and its token/weight are zeroed
        regardless of the conditional) and a non-participating row stays
        MASK — so every column of the run can be folded into the session
        buffer *before* its conditional is evaluated, and a single compiled
        blocks pass at the widest prefix yields all run conditionals via
        per-column output heads. Rows that die mid-run read garbage
        conditionals afterwards, but every consumer multiplies them by
        ``where(alive, ·, 0)``, so the results match the column-at-a-time
        walk (fp32 path only; the fp64 oracle keeps the reference loop).
        """
        layout = self.layout
        cols = [layout.spec_ranges[s.name][0] for s in run]
        parts_per = [
            [qi for qi in active if s.name in plans[qi].indicators] for s in run
        ]
        session.ensure_folded(cols[0])
        # Pre-fold the run columns with their (deterministic) post-draw
        # ids: 1 inside participating slices, MASK elsewhere. With a tail
        # column riding the pass, the last run column (and the skipped
        # all-MASK columns up to the tail) pre-fold too.
        prefold = cols if tail_col is not None else cols[:-1]
        for col, parts in zip(prefold, parts_per):
            if parts:
                session.fold_slices(col, [slices[qi] for qi in parts], 1)
            else:
                session.folded = max(session.folded, col + 1)
        head_cols = list(cols)
        if tail_col is not None:
            session.folded = max(session.folded, tail_col)
            head_cols.append(tail_col)

        union = np.flatnonzero(alive)
        probs_per = None
        inverse = None
        if len(union):
            if state["dedup"]:
                # Rows may share a token prefix across queries, but their
                # indicator columns depend on which tables the row's query
                # joins — extend the dedup key with that membership pattern.
                pattern = np.zeros(n_queries, dtype=np.int64)
                for bit, parts in enumerate(parts_per):
                    for qi in parts:
                        pattern[qi] |= 1 << bit
                pattern = _compress(pattern)
                key = group[union] * (int(pattern.max()) + 1) + pattern[union // n]
                first, inverse = _first_and_inverse(_compress(key))
                reps = union[first]
                if len(first) == len(union):
                    inverse = None
                    reps = union
            else:
                reps = union
            probs_per = session.probs_multi(reps, head_cols)
            if tail_col is not None:
                state["tail"] = (tail_col, union, inverse, probs_per[-1])

        for col, parts, probs_u in zip(cols, parts_per, probs_per or [None] * len(cols)):
            if not parts:
                continue
            all_live = np.flatnonzero(alive)
            bounds = np.searchsorted(
                all_live,
                [b for qi in parts for b in (slices[qi].start, slices[qi].stop)],
            )
            taking, apply_rows_parts, mass_parts = [], [], []
            for idx, qi in enumerate(parts):
                seg = all_live[bounds[2 * idx] : bounds[2 * idx + 1]]
                if not len(seg):
                    continue
                pos = np.searchsorted(union, seg)
                p = probs_u[inverse[pos]] if inverse is not None else probs_u[pos]
                taking.append(qi)
                apply_rows_parts.append((seg - slices[qi].start, p[:, 1]))
            if taking:
                apply_rows = np.concatenate(
                    [np.arange(slices[qi].start, slices[qi].stop) for qi in taking]
                )
                mass_full = np.zeros(len(apply_rows), dtype=np.float64)
                drawn_full = np.zeros(len(apply_rows), dtype=np.int64)
                for j, (live, mass) in enumerate(apply_rows_parts):
                    mass_full[j * n + live] = mass
                    drawn_full[j * n + live] = 1
                mass_full = np.clip(mass_full, 0.0, None)
                w = weight[apply_rows]
                a = alive[apply_rows]
                w *= np.where(a, mass_full, 0.0)
                a &= mass_full > 0
                weight[apply_rows] = w
                alive[apply_rows] = a
                tokens[apply_rows, col] = np.where(a, drawn_full, 0)
                wildcard[apply_rows, col] = False
            group = self._fold_group(group, col, tokens, wildcard, session, state)
            any_alive = alive.reshape(n_queries, n).any(axis=1)
            active = [qi for qi in active if any_alive[qi]]
            if not active:
                break
        return group, active

    # ------------------------------------------------------------------
    def _compiled_column(
        self, col, k, parts, ops, slices, tokens, wildcard, weight, alive,
        rngs, group, session, state,
    ) -> None:
        """One column step: shared forward + per-op-class vectorized draws.

        Row-wise math is identical to ``ProgressiveSampler._batch_column``
        (same conditionals, same uniform streams, same update formulas);
        only the looping is restructured, so ``fp64`` mode is bitwise-equal
        to the reference.
        """
        n = slices[0].stop - slices[0].start
        # One global scan for the live rows, split per query afterwards —
        # equivalent to a flatnonzero per participating slice.
        all_live = np.flatnonzero(alive)
        bounds = np.searchsorted(
            all_live, [b for qi in parts for b in (slices[qi].start, slices[qi].stop)]
        )
        live_local, segments = {}, []
        for i, qi in enumerate(parts):
            seg = all_live[bounds[2 * i] : bounds[2 * i + 1]]
            segments.append(seg)
            live_local[qi] = seg - slices[qi].start
        rows = np.concatenate(segments)

        probs = None
        tail = state.pop("tail", None)
        if tail is not None and tail[0] == col and len(rows):
            # This column's conditionals were produced by the preceding
            # indicator run's shared blocks pass; map our live rows into it.
            _, t_union, t_inverse, t_probs = tail
            pos = np.searchsorted(t_union, rows)
            probs = t_probs[t_inverse[pos]] if t_inverse is not None else t_probs[pos]
        elif len(rows) and session is not None and not state["dedup"]:
            probs = session.probs(rows, col)
        elif len(rows):
            first_local, inverse = _first_and_inverse(group[rows])
            if session is not None and len(first_local) > 0.9 * len(rows):
                state["dedup"] = False
            if session is not None:
                if len(first_local) < len(rows):
                    probs = session.probs(rows[first_local], col)[inverse]
                else:
                    probs = session.probs(rows, col)
            elif len(first_local) < len(rows):
                first = rows[first_local]
                probs = self._column_conditional(
                    tokens[first], col, wildcard[first]
                )[inverse]
            else:
                probs = self._column_conditional(tokens[rows], col, wildcard[rows])

        # Per-query uniform draws, full length, in parts order — the exact
        # stream consumption of the reference loop (and the sequential
        # path), regardless of how many rows are still alive.
        us = {
            qi: (rngs[qi].random(n) if ops[qi].needs_rng else None) for qi in parts
        }

        # Segment offsets of each query's live rows inside ``rows``/``probs``.
        offsets = np.zeros(len(parts) + 1, dtype=np.int64)
        np.cumsum([len(seg) for seg in segments], out=offsets[1:])
        mass_all = np.zeros(len(rows), dtype=np.float64)
        drawn_all = np.zeros(len(rows), dtype=np.int64)

        interval, fanout, indicator, rest = [], [], [], []
        for pi, qi in enumerate(parts):
            if len(live_local[qi]) == 0:
                continue
            op = ops[qi]
            if isinstance(op, _IntervalOp):
                interval.append(pi)
            elif isinstance(op, _FanoutOp):
                fanout.append(pi)
            elif isinstance(op, _IndicatorOp):
                indicator.append(pi)
            else:
                rest.append(pi)

        n_nonzero = sum(1 for qi in parts if len(live_local[qi]))

        def positions(group_list):
            # Homogeneous column (every query runs the same op class, the
            # common case): address all rows with a no-copy slice.
            if len(group_list) == n_nonzero:
                return slice(None)
            return np.concatenate(
                [np.arange(offsets[pi], offsets[pi + 1]) for pi in group_list]
            )

        def gathered_u(group_list):
            return np.concatenate(
                [us[parts[pi]][live_local[parts[pi]]] for pi in group_list]
            )

        if interval:
            pos = positions(interval)
            bounds = [self._interval_bounds(ops, parts, live_local, pi, k)
                      for pi in interval]
            lo = np.concatenate([b[0] for b in bounds])
            hi = np.concatenate([b[1] for b in bounds])
            mass_all[pos], drawn_all[pos] = _draw_interval(
                probs[pos], lo, hi, gathered_u(interval)
            )
        if fanout:
            pos = positions(fanout)
            tilt = ops[parts[fanout[0]]].reciprocals
            mass_all[pos], drawn_all[pos] = _draw_tilted(
                probs[pos], tilt, gathered_u(fanout)
            )
        if indicator:
            pos = positions(indicator)
            mass_all[pos] = probs[pos, 1]
            drawn_all[pos] = 1
        for pi in rest:  # IN-set ops: per-query trie state
            qi = parts[pi]
            seg = slice(offsets[pi], offsets[pi + 1])
            u = us[qi]
            mass_all[seg], drawn_all[seg] = ops[qi].draw(
                k, probs[seg], live_local[qi],
                u[live_local[qi]] if u is not None else None,
            )

        # One gather/scatter pass applies every participating query's
        # update (the reference applies per query; values are identical).
        taking = [pi for pi in range(len(parts)) if len(live_local[parts[pi]])]
        if not taking:
            return
        apply_rows = np.concatenate(
            [np.arange(slices[parts[pi]].start, slices[parts[pi]].stop)
             for pi in taking]
        )
        mass_full = np.zeros(len(apply_rows), dtype=np.float64)
        drawn_full = np.zeros(len(apply_rows), dtype=np.int64)
        # mass_all/drawn_all are ordered by parts segments, so one scatter
        # places every query's live values (empty segments contribute none).
        at_all = np.concatenate(
            [j * n + live_local[parts[pi]] for j, pi in enumerate(taking)]
        )
        mass_full[at_all] = mass_all
        drawn_full[at_all] = drawn_all
        mass_full = np.clip(mass_full, 0.0, None)
        w = weight[apply_rows]
        a = alive[apply_rows]
        w *= np.where(a, mass_full, 0.0)
        a &= mass_full > 0
        weight[apply_rows] = w
        alive[apply_rows] = a
        tokens[apply_rows, col] = np.where(a, drawn_full, 0)
        wildcard[apply_rows, col] = False

        for pi in taking:
            qi = parts[pi]
            seg = slice(offsets[pi], offsets[pi + 1])
            ops[qi].observe(k, live_local[qi], drawn_all[seg])

    @staticmethod
    def _interval_bounds(ops, parts, live_local, pi, k):
        qi = parts[pi]
        op = ops[qi]
        lo, hi = (op.lo, op.hi) if op.state is None else op.state.bounds(k)
        live = live_local[qi]
        return lo[live], hi[live]


# ----------------------------------------------------------------------
# Engine assembly helpers
# ----------------------------------------------------------------------
def build_engine(
    model, layout, full_join_size: float, mode: str = "fp32",
    quantization: str = "off",
) -> ProgressiveSampler:
    """A progressive-sampling engine over ``model`` in the given mode.

    ``quantization`` ("off"/"int16"/"int8") selects the compiled kernels'
    weight precision and is only valid with ``mode="fp32"`` — the reference
    and fp64 oracle engines stay full-precision by design.
    """
    if mode not in INFERENCE_MODES:
        raise EstimationError(
            f"unknown inference mode {mode!r}; expected one of {INFERENCE_MODES}"
        )
    if quantization not in QUANTIZATION_MODES:
        raise EstimationError(
            f"unknown quantization {quantization!r}; "
            f"expected one of {QUANTIZATION_MODES}"
        )
    if mode == "off":
        if quantization != "off":
            raise EstimationError(
                "quantized kernels require the compiled fp32 engine "
                "(mode='fp32'); the reference engine stays full-precision"
            )
        return ProgressiveSampler(model, layout, full_join_size)
    return CompiledEngine(
        model, layout, full_join_size, mode=mode, quantization=quantization
    )


def measure_quantization_drift(
    engine: ProgressiveSampler,
    queries,
    *,
    n_samples: int,
    seed: int = 0,
) -> np.ndarray:
    """Per-query relative drift of a quantized engine vs its fp64 oracle.

    Runs the same pinned-seed batched walk twice — once through the
    engine's (quantized) kernels, once through a throwaway fp64 oracle
    engine over the same wrapped weights — and returns
    ``|est_q - est_oracle| / max(est_oracle, 1)`` per query. The summary is
    recorded on the compiled model (:meth:`CompiledResMADE.record_drift`)
    so it surfaces through ``stats()`` and the serving ``/metrics`` page.
    """
    compiled = compiled_model(engine)
    if compiled is None or compiled.quantization == "off":
        raise EstimationError("drift measurement needs a quantized engine")
    oracle = CompiledEngine(
        compiled.reference, engine.layout, engine.full_join_size, mode="fp64"
    )
    queries = list(queries)
    rngs = [np.random.default_rng(seed + i) for i in range(len(queries))]
    est_q = engine.estimate_batch(queries, n_samples=n_samples, rngs=rngs)
    rngs = [np.random.default_rng(seed + i) for i in range(len(queries))]
    est_o = oracle.estimate_batch(queries, n_samples=n_samples, rngs=rngs)
    rel = np.abs(est_q - est_o) / np.maximum(np.abs(est_o), 1.0)
    compiled.record_drift(rel)
    return rel


def compiled_model(engine: ProgressiveSampler) -> Optional[CompiledResMADE]:
    """The engine's compiled wrapper, or None for reference engines."""
    model = getattr(engine, "model", None)
    return model if isinstance(model, CompiledResMADE) else None


def compiled_size_bytes(engine: Optional[ProgressiveSampler]) -> int:
    """Bytes held by the engine's compiled buffers (0 if uncompiled)."""
    compiled = None if engine is None else compiled_model(engine)
    return 0 if compiled is None else compiled.size_bytes


def invalidate_compiled(engine: Optional[ProgressiveSampler]) -> None:
    """Drop compiled state so the next call refolds the current weights."""
    compiled = None if engine is None else compiled_model(engine)
    if compiled is not None:
        compiled.invalidate()


def export_engine_state(engine: ProgressiveSampler) -> dict:
    """The engine's deterministic compiled buffers as ``name -> array``.

    Empty for reference engines and for the fp64 oracle mode (neither
    holds compiled buffers); otherwise folds first if needed. Used by the
    serving worker pool to publish one shared-memory copy of the kernels.
    """
    compiled = compiled_model(engine)
    if compiled is None or compiled.mode == "fp64":
        return {}
    return compiled.export_state()


def attach_engine_state(engine: ProgressiveSampler, arrays: dict) -> None:
    """Install buffers from :func:`export_engine_state` into the engine.

    The engine's compiled kernel adopts the (typically shared-memory-
    backed, read-only) buffers without refolding from the weights; no-op
    when ``arrays`` is empty. Raises for engines that cannot hold compiled
    state — attaching fp32 buffers to a reference engine would silently
    serve nothing.
    """
    if not arrays:
        return
    compiled = compiled_model(engine)
    if compiled is None:
        raise EstimationError(
            "cannot attach compiled buffers to a reference engine "
            "(build it with mode='fp32')"
        )
    compiled.attach_state(arrays)


def precompile_plan(engine: ProgressiveSampler, plan: QueryPlan) -> int:
    """Seed the compiled wildcard-constant cache for one resolved plan.

    Mirrors the batched engine's column walk exactly: for every model
    column the plan constrains, the wildcard pattern the stateless kernel
    would be presented at that step is registered with the compiled model.
    Returns the number of newly seeded patterns (0 on reference/oracle
    engines).
    """
    compiled = compiled_model(engine)
    if compiled is None or compiled.mode == "fp64":
        return 0
    layout = engine.layout
    regions = plan.region_map()
    wc_row = np.ones(layout.n_columns, dtype=bool)
    seeded = 0
    for spec in layout.specs:
        start, end = layout.spec_ranges[spec.name]
        if spec.kind == "content":
            if spec.name not in regions:
                continue
        elif spec.kind == "indicator":
            if spec.name not in plan.indicators:
                continue
        elif spec.name not in plan.fanouts:
            continue
        for col in range(start, end):
            seeded += compiled.warm_pattern(wc_row, col)
            wc_row[col] = False
    return seeded
